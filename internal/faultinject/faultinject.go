// Package faultinject is the engine's deterministic fault-injection
// layer: named injection sites sprinkled through the serving and
// persistence paths that, when a profile is active, fail on purpose —
// returning errors, panicking, sleeping, running out of disk space or
// tearing file writes — so tests and chaos runs can prove the system
// degrades the way the anytime contract promises instead of crashing
// or corrupting state.
//
// # Injection-site grammar
//
// A profile is a semicolon-separated list of entries:
//
//	profile := entry (';' entry)*
//	entry   := 'seed=' uint | site '=' kind [':' arg] ['@' rate] ['#' count]
//	site    := dotted lowercase name ("server.optimize", "checkpoint.write")
//	kind    := 'error' | 'panic' | 'latency' | 'enospc' | 'partial' | 'torn'
//	         | 'conn-refused' | 'partition' | 'slow-peer'
//	arg     := duration (latency and slow-peer, e.g. "latency:50ms")
//	rate    := float in (0, 1], probability per call (default 1: every call)
//	count   := uint, maximum number of fires (default unlimited)
//
// Examples:
//
//	server.optimize=panic@0.02              panic in 2% of optimize handlers
//	checkpoint.write=enospc@0.3             ENOSPC on 30% of checkpoint writes
//	checkpoint.rename=torn#1                tear exactly one rename, then behave
//	opt.worker.step=latency:5ms@0.001       stall 0.1% of optimizer steps
//	replica.pull=partition@0.2#10           drop 20% of replication pulls
//	router.forward=conn-refused#3           refuse three forwarded requests
//	replica.pull=slow-peer:100ms@0.5        congest half the pulls
//	seed=7                                  seed of the firing pattern
//
// Profiles activate via the RMQ_FAULTS environment variable (read by
// FromEnv, which cmd/rmqd calls at startup), the rmqd -faults flag, or
// programmatically via Enable in tests.
//
// # Determinism
//
// Firing decisions are seed-driven and per-site: each site derives its
// own stream seed from the profile seed and the site name, and advances
// a private call counter, so the same sequence of calls at a site fires
// identically regardless of how calls at other sites interleave. Two
// runs with the same profile and the same per-site call sequences
// observe the same faults.
//
// # Cost when disabled
//
// The whole layer is one atomic pointer load when no profile is active.
// Check and Enabled are //rmq:hotpath and allocation-free on every path
// (injected errors and panic values are preallocated when the profile
// is parsed), so rmqlint's hotalloc analyzer verifies the disabled-path
// cost stays zero-alloc.
package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"
)

// Kind names one injected failure behavior.
type Kind uint8

const (
	// KindError returns an injected *Error from Check.
	KindError Kind = iota
	// KindPanic panics with an injected *Error value.
	KindPanic
	// KindLatency sleeps for the configured duration, then succeeds.
	KindLatency
	// KindENOSPC returns an *Error wrapping syscall.ENOSPC — the
	// disk-full failure of filesystem sites.
	KindENOSPC
	// KindPartial applies to write sites: half the data is written,
	// then an ENOSPC-wrapping error is returned (a torn file).
	KindPartial
	// KindTorn applies to rename sites: the destination receives a
	// truncated copy of the source and the call reports success — the
	// silent corruption of a non-atomic filesystem dying mid-rename.
	KindTorn
	// KindConnRefused models a dead peer: network sites fail immediately
	// with a dial error unwrapping to syscall.ECONNREFUSED.
	KindConnRefused
	// KindPartition models a broken network path: network sites fail
	// with a timeout-flavored i/o error (the request neither reaches the
	// peer nor returns).
	KindPartition
	// KindSlowPeer models a congested peer: network sites stall for the
	// configured duration, then proceed.
	KindSlowPeer
)

// String returns the grammar name of the kind.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindLatency:
		return "latency"
	case KindENOSPC:
		return "enospc"
	case KindPartial:
		return "partial"
	case KindTorn:
		return "torn"
	case KindConnRefused:
		return "conn-refused"
	case KindPartition:
		return "partition"
	case KindSlowPeer:
		return "slow-peer"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Error is the error (and panic value) produced by a firing site.
// KindENOSPC and KindPartial errors unwrap to syscall.ENOSPC, so
// errors.Is(err, syscall.ENOSPC) holds for them.
type Error struct {
	Site string
	Kind Kind
}

// Error implements the error interface.
func (e *Error) Error() string {
	return "faultinject: injected " + e.Kind.String() + " at " + e.Site
}

// Unwrap exposes the ENOSPC cause of disk-space faults and the
// ECONNREFUSED cause of dead-peer faults.
func (e *Error) Unwrap() error {
	switch e.Kind {
	case KindENOSPC, KindPartial:
		return syscall.ENOSPC
	case KindConnRefused:
		return syscall.ECONNREFUSED
	default:
		return nil
	}
}

// Timeout reports whether the fault models an i/o timeout. It makes a
// partition fault wrapped in a *net.OpError satisfy net.Error.Timeout,
// exactly like a real stalled connection.
func (e *Error) Timeout() bool { return e.Kind == KindPartition }

// IsInjected reports whether err is (or wraps) an injected fault.
func IsInjected(err error) bool {
	var fe *Error
	return errors.As(err, &fe)
}

// site is one armed injection point.
type site struct {
	name    string
	kind    Kind
	latency time.Duration
	// threshold gates firing: the site fires when the next value of its
	// seeded stream is below it. ^uint64(0) means every call.
	threshold uint64
	seed      uint64
	limited   bool   // remaining is a budget (a '#count' was given)
	err       *Error // preallocated; also the panic value

	calls     atomic.Uint64 // per-site call counter; the stream position
	remaining atomic.Int64  // fires left when limited (may go negative)
	fired     atomic.Uint64
}

// Profile is a parsed set of armed sites. A Profile is immutable after
// Parse except for the per-site counters.
type Profile struct {
	seed  uint64
	sites map[string]*site
	spec  string
}

// String returns the spec the profile was parsed from.
func (p *Profile) String() string { return p.spec }

// active is the installed profile; nil when injection is disabled. One
// atomic load is the entire disabled-path cost.
var active atomic.Pointer[Profile]

// Enable installs the profile, replacing any previous one. A nil
// profile disables injection (same as Disable).
func Enable(p *Profile) { active.Store(p) }

// Disable deactivates fault injection.
func Disable() { active.Store(nil) }

// Active returns the installed profile, or nil.
func Active() *Profile { return active.Load() }

// Enabled reports whether a fault profile is active.
//
//rmq:hotpath
func Enabled() bool { return active.Load() != nil }

// Check consults the site and returns its injected error when it fires
// (nil otherwise). KindPanic sites panic with an *Error instead;
// KindLatency sites sleep and return nil. Filesystem-only kinds
// (partial, torn) behave like KindENOSPC/no-op here — their tearing
// semantics live in the fs wrappers, which give them the data to tear.
//
// The disabled path — no profile, or a profile without this site — is
// one atomic load plus a map probe and never allocates.
//
//rmq:hotpath
func Check(name string) error {
	p := active.Load()
	if p == nil {
		return nil
	}
	s := p.sites[name]
	if s == nil || !s.fire() {
		return nil
	}
	switch s.kind {
	case KindPanic:
		panic(s.err)
	case KindLatency, KindSlowPeer:
		time.Sleep(s.latency)
		return nil
	case KindTorn:
		// Tearing needs file contents; at a plain call site it degrades
		// to a no-op rather than inventing a failure the spec did not ask
		// for at this kind of site.
		return nil
	default:
		return s.err
	}
}

// lookup returns the armed site for name, or nil, without advancing any
// counter. The fs wrappers use it to apply kind-specific semantics.
func lookup(name string) *site {
	p := active.Load()
	if p == nil {
		return nil
	}
	return p.sites[name]
}

// fire advances the site's deterministic stream and reports whether
// this call fails. It never allocates.
//
//rmq:hotpath
func (s *site) fire() bool {
	n := s.calls.Add(1)
	if s.threshold != ^uint64(0) && splitmix64(s.seed+n) >= s.threshold {
		return false
	}
	if s.limited && s.remaining.Add(-1) < 0 {
		return false
	}
	s.fired.Add(1)
	return true
}

// Fired returns how many times the named site has fired under the
// active profile (0 when inactive or unknown) — chaos runs and tests
// use it to bound observed error rates against injected ones.
func Fired(name string) uint64 {
	if s := lookup(name); s != nil {
		return s.fired.Load()
	}
	return 0
}

// Stats returns the fire counts of every armed site of the active
// profile, keyed by site name; nil when injection is disabled.
func Stats() map[string]uint64 {
	p := active.Load()
	if p == nil {
		return nil
	}
	out := make(map[string]uint64, len(p.sites))
	for name, s := range p.sites {
		out[name] = s.fired.Load()
	}
	return out
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix
// turning the per-site counter into a uniform stream.
//
//rmq:hotpath
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// fnv1a hashes a site name for per-site stream separation.
func fnv1a(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// Parse compiles a profile spec (see the package documentation for the
// grammar). An empty spec yields a nil profile (injection disabled).
func Parse(spec string) (*Profile, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Profile{seed: 1, sites: make(map[string]*site), spec: spec}
	var entries []string
	for _, e := range strings.Split(spec, ";") {
		if e = strings.TrimSpace(e); e != "" {
			entries = append(entries, e)
		}
	}
	// Seed first, regardless of position: site stream seeds derive from it.
	rest := entries[:0]
	for _, e := range entries {
		if v, ok := strings.CutPrefix(e, "seed="); ok {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q: %v", v, err)
			}
			p.seed = seed
			continue
		}
		rest = append(rest, e)
	}
	for _, e := range rest {
		s, err := parseSite(e, p.seed)
		if err != nil {
			return nil, err
		}
		if _, dup := p.sites[s.name]; dup {
			return nil, fmt.Errorf("faultinject: site %q specified twice", s.name)
		}
		p.sites[s.name] = s
	}
	if len(p.sites) == 0 {
		return nil, fmt.Errorf("faultinject: profile %q names no sites", spec)
	}
	return p, nil
}

// MustParse is Parse for tests and trusted literals; it panics on error.
func MustParse(spec string) *Profile {
	p, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return p
}

// parseSite compiles one "site=kind[:arg][@rate][#count]" entry.
func parseSite(entry string, seed uint64) (*site, error) {
	name, rhs, ok := strings.Cut(entry, "=")
	name = strings.TrimSpace(name)
	if !ok || name == "" || rhs == "" {
		return nil, fmt.Errorf("faultinject: bad entry %q (want site=kind[:arg][@rate][#count])", entry)
	}
	s := &site{name: name, threshold: ^uint64(0), seed: splitmix64(seed ^ fnv1a(name))}
	if i := strings.IndexByte(rhs, '#'); i >= 0 {
		count, err := strconv.ParseUint(rhs[i+1:], 10, 63)
		if err != nil {
			return nil, fmt.Errorf("faultinject: %s: bad count %q: %v", name, rhs[i+1:], err)
		}
		s.limited = true
		s.remaining.Store(int64(count))
		rhs = rhs[:i]
	}
	if i := strings.IndexByte(rhs, '@'); i >= 0 {
		rate, err := strconv.ParseFloat(rhs[i+1:], 64)
		if err != nil || rate <= 0 || rate > 1 {
			return nil, fmt.Errorf("faultinject: %s: bad rate %q (want a float in (0, 1])", name, rhs[i+1:])
		}
		if rate < 1 {
			s.threshold = uint64(rate * float64(1<<63) * 2)
		}
		rhs = rhs[:i]
	}
	kindName, arg, _ := strings.Cut(rhs, ":")
	switch kindName {
	case "error":
		s.kind = KindError
	case "panic":
		s.kind = KindPanic
	case "enospc":
		s.kind = KindENOSPC
	case "partial":
		s.kind = KindPartial
	case "torn":
		s.kind = KindTorn
	case "conn-refused":
		s.kind = KindConnRefused
	case "partition":
		s.kind = KindPartition
	case "latency", "slow-peer":
		s.kind = KindLatency
		if kindName == "slow-peer" {
			s.kind = KindSlowPeer
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("faultinject: %s: %s needs a duration argument (got %q)", name, kindName, arg)
		}
		s.latency = d
	default:
		return nil, fmt.Errorf("faultinject: %s: unknown kind %q", name, kindName)
	}
	if s.kind != KindLatency && s.kind != KindSlowPeer && arg != "" {
		return nil, fmt.Errorf("faultinject: %s: kind %s takes no argument (got %q)", name, kindName, arg)
	}
	s.err = &Error{Site: name, Kind: s.kind}
	return s, nil
}

// FromEnv activates the profile named by the RMQ_FAULTS environment
// variable, if any, and returns its spec ("" when unset). cmd/rmqd
// calls it at startup so chaos jobs can arm a daemon without touching
// its command line.
func FromEnv(env string) (string, error) {
	p, err := Parse(env)
	if err != nil {
		return "", err
	}
	if p != nil {
		Enable(p)
		return p.spec, nil
	}
	return "", nil
}
