package faultinject

// Filesystem wrappers with injection sites. Checkpointing and every
// other durability path route their file operations through these, so a
// fault profile can kill a write mid-stream, fill the disk, or tear a
// rename without any platform trickery — and tests can assert that
// restart recovery always finds the last-good state.
//
// Every wrapper takes its site name explicitly (the caller's
// vocabulary: "checkpoint.write", "checkpoint.rename", ...), so one
// profile can target the snap install rename without touching the
// generation rotation that shares the same underlying syscall.
//
// Kind semantics at filesystem sites:
//
//   - error, enospc: the operation does not happen; the injected error
//     is returned (enospc unwraps to syscall.ENOSPC).
//   - partial (write sites): half the data is written, then an
//     ENOSPC-wrapping error — a torn file with a truthful error.
//   - torn (rename sites): the destination receives a truncated prefix
//     of the source, the source is removed, and the call reports
//     SUCCESS — the silent corruption of a dying non-atomic filesystem.
//     Recovery must catch this from checksums, not error codes.
//   - latency: the operation happens after the configured sleep.

import (
	"os"
	"time"
)

// CreateTemp is os.CreateTemp behind the named injection site.
func CreateTemp(siteName, dir, pattern string) (*os.File, error) {
	if err := Check(siteName); err != nil {
		return nil, err
	}
	return os.CreateTemp(dir, pattern)
}

// Write writes data to f behind the named injection site. A partial
// fault writes the first half of data and returns an ENOSPC-wrapping
// error, leaving a torn file for recovery to detect.
func Write(siteName string, f *os.File, data []byte) (int, error) {
	if s := lookup(siteName); s != nil && s.fire() {
		if s.kind == KindPartial {
			n, _ := f.Write(data[:len(data)/2])
			return n, s.err
		}
		if s.kind == KindLatency {
			time.Sleep(s.latency)
		} else {
			return 0, s.err
		}
	}
	return f.Write(data)
}

// Sync is f.Sync behind the named injection site.
func Sync(siteName string, f *os.File) error {
	if err := Check(siteName); err != nil {
		return err
	}
	return f.Sync()
}

// Rename is os.Rename behind the named injection site. A torn fault
// installs a truncated prefix of the source at the destination, removes
// the source, and reports success — silent corruption that only content
// verification (CRC) can catch.
func Rename(siteName, oldpath, newpath string) error {
	if s := lookup(siteName); s != nil && s.fire() {
		switch s.kind {
		case KindTorn:
			data, err := os.ReadFile(oldpath)
			if err != nil {
				return err
			}
			if err := os.WriteFile(newpath, data[:len(data)/2], 0o644); err != nil {
				return err
			}
			_ = os.Remove(oldpath)
			return nil
		case KindLatency:
			time.Sleep(s.latency)
		default:
			return s.err
		}
	}
	return os.Rename(oldpath, newpath)
}

// Remove is os.Remove behind the named injection site.
func Remove(siteName, name string) error {
	if err := Check(siteName); err != nil {
		return err
	}
	return os.Remove(name)
}

// ReadFile is os.ReadFile behind the named injection site.
func ReadFile(siteName, name string) ([]byte, error) {
	if err := Check(siteName); err != nil {
		return nil, err
	}
	return os.ReadFile(name)
}

// MkdirAll is os.MkdirAll behind the named injection site.
func MkdirAll(siteName, path string, perm os.FileMode) error {
	if err := Check(siteName); err != nil {
		return err
	}
	return os.MkdirAll(path, perm)
}
