// Package quality implements the approximation-quality metric of the
// paper's evaluation (Section 6.1): the lowest approximation factor α
// such that a produced plan set is an α-approximate Pareto set relative
// to a reference frontier. This is the multiplicative ε-indicator of
// Zitzler and Thiele with α = 1 + ε; lower is better and α = 1 means the
// produced set approximates the reference perfectly.
package quality

import (
	"math"

	"rmq/internal/cost"
)

// Epsilon returns the smallest α ≥ 1 such that for every reference cost
// vector some produced vector approximately dominates it with factor α.
// An empty produced set yields +Inf (no approximation at all); an empty
// reference yields 1.
func Epsilon(produced, reference []cost.Vector) float64 {
	if len(reference) == 0 {
		return 1
	}
	if len(produced) == 0 {
		return math.Inf(1)
	}
	worst := 1.0
	for _, r := range reference {
		best := math.Inf(1)
		for _, p := range produced {
			if f := p.DominationFactor(r); f < best {
				best = f
				if best <= worst {
					break // cannot raise the maximum any further
				}
			}
		}
		if best > worst {
			worst = best
		}
	}
	return worst
}

// NonDominated filters a multiset of cost vectors down to its Pareto
// frontier: vectors not strictly dominated by any other, with exact
// duplicates collapsed. The input is not modified.
func NonDominated(vectors []cost.Vector) []cost.Vector {
	var out []cost.Vector
	for _, v := range vectors {
		dominated := false
		for _, o := range out {
			if o.Dominates(v) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		keep := out[:0]
		for _, o := range out {
			if !v.Dominates(o) {
				keep = append(keep, o)
			}
		}
		out = append(keep, v)
	}
	return out
}

// Union merges several cost-vector sets into one non-dominated reference
// frontier, as the paper does when the true Pareto frontier is
// computationally out of reach ("taking the union of the obtained result
// plans", Section 6.1).
func Union(sets ...[]cost.Vector) []cost.Vector {
	var all []cost.Vector
	for _, s := range sets {
		all = append(all, s...)
	}
	return NonDominated(all)
}
