package quality

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"rmq/internal/cost"
)

func vecs(rows ...[]float64) []cost.Vector {
	out := make([]cost.Vector, len(rows))
	for i, r := range rows {
		out[i] = cost.New(r...)
	}
	return out
}

func TestEpsilonEmptySets(t *testing.T) {
	ref := vecs([]float64{1, 1})
	if got := Epsilon(nil, ref); !math.IsInf(got, 1) {
		t.Errorf("empty produced set: α = %g, want +Inf", got)
	}
	if got := Epsilon(ref, nil); got != 1 {
		t.Errorf("empty reference: α = %g, want 1", got)
	}
}

func TestEpsilonIdentity(t *testing.T) {
	set := vecs([]float64{1, 4}, []float64{4, 1})
	if got := Epsilon(set, set); got != 1 {
		t.Errorf("α(A, A) = %g, want 1", got)
	}
}

func TestEpsilonKnownValue(t *testing.T) {
	produced := vecs([]float64{2, 2})
	ref := vecs([]float64{1, 1})
	if got := Epsilon(produced, ref); got != 2 {
		t.Errorf("α = %g, want 2", got)
	}
	// Worst reference point decides.
	ref = vecs([]float64{1, 1}, []float64{2, 2})
	if got := Epsilon(produced, ref); got != 2 {
		t.Errorf("α = %g, want 2", got)
	}
	// Best produced point per reference decides.
	produced = vecs([]float64{2, 2}, []float64{1.5, 1.5})
	ref = vecs([]float64{1, 1})
	if got := Epsilon(produced, ref); got != 1.5 {
		t.Errorf("α = %g, want 1.5", got)
	}
}

func TestEpsilonDominatingSetIsPerfect(t *testing.T) {
	produced := vecs([]float64{0.5, 0.5})
	ref := vecs([]float64{1, 1}, []float64{2, 0.9})
	if got := Epsilon(produced, ref); got != 1 {
		t.Errorf("α = %g, want 1 for dominating set", got)
	}
}

func TestNonDominatedFiltersAndDedupes(t *testing.T) {
	in := vecs(
		[]float64{1, 4},
		[]float64{4, 1},
		[]float64{2, 2},
		[]float64{5, 5}, // dominated
		[]float64{1, 4}, // duplicate
	)
	out := NonDominated(in)
	if len(out) != 3 {
		t.Fatalf("NonDominated kept %d, want 3: %v", len(out), out)
	}
	for i, a := range out {
		for j, b := range out {
			if i != j && a.Dominates(b) {
				t.Fatalf("dominated vector kept: %v ⪯ %v", a, b)
			}
		}
	}
}

func TestNonDominatedEmpty(t *testing.T) {
	if got := NonDominated(nil); len(got) != 0 {
		t.Errorf("NonDominated(nil) = %v", got)
	}
}

func TestUnion(t *testing.T) {
	a := vecs([]float64{1, 4})
	b := vecs([]float64{4, 1}, []float64{2, 5}) // (2,5) dominated by (1,4)
	got := Union(a, b)
	if len(got) != 2 {
		t.Fatalf("Union = %v", got)
	}
}

func randFront(r *rand.Rand, n int) []cost.Vector {
	out := make([]cost.Vector, n)
	for i := range out {
		out[i] = cost.New(math.Exp(r.Float64()*8), math.Exp(r.Float64()*8))
	}
	return out
}

// TestQuickEpsilonSupersetNeverWorse: adding plans to the produced set
// can only improve (lower) the approximation factor.
func TestQuickEpsilonSupersetNeverWorse(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 1))
		ref := randFront(r, 5)
		a := randFront(r, 4)
		b := append(append([]cost.Vector(nil), a...), randFront(r, 3)...)
		return Epsilon(b, ref) <= Epsilon(a, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickEpsilonScaling: scaling the produced set by factor f ≥ 1
// raises α by at most (and, against a self-reference, exactly) f.
func TestQuickEpsilonScaling(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 2))
		ref := randFront(r, 4)
		factor := 1 + r.Float64()*5
		scaled := make([]cost.Vector, len(ref))
		for i, v := range ref {
			scaled[i] = v.Scale(factor)
		}
		got := Epsilon(scaled, ref)
		return math.Abs(got-factor) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickNonDominatedCoverage: every input vector is weakly dominated
// by some output vector, and outputs are mutually non-dominating.
func TestQuickNonDominatedCoverage(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 3))
		in := randFront(r, 30)
		out := NonDominated(in)
		for _, v := range in {
			ok := false
			for _, o := range out {
				if o.Dominates(v) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		if got := Epsilon(out, in); got != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEpsilon(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 2))
	produced := randFront(r, 50)
	ref := randFront(r, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Epsilon(produced, ref)
	}
}
