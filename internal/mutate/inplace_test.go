package mutate

import (
	"math/rand/v2"
	"testing"

	"rmq/internal/catalog"
	"rmq/internal/costmodel"
	"rmq/internal/plan"
	"rmq/internal/tableset"
)

// buildMove evaluates the derived quantities of a structural move using
// the cost model, mirroring what the climbing move search computes.
func buildMove(m *costmodel.Model, kind MoveKind, rootOp, childOp plan.JoinOp, childOuter, childInner, fixed *plan.Plan, childIsInner bool, rootCard float64) *Move {
	childCard := m.JoinCard(childOuter, childInner)
	childCost := m.JoinCostParts(childOp, childOuter.Cost, childOuter.Card, childInner.Cost, childInner.Card, childCard)
	childRel := childOuter.Rel.Union(childInner.Rel)
	var rootCost = childCost
	if childIsInner {
		rootCost = m.JoinCostParts(rootOp, fixed.Cost, fixed.Card, childCost, childCard, rootCard)
	} else {
		rootCost = m.JoinCostParts(rootOp, childCost, childCard, fixed.Cost, fixed.Card, rootCard)
	}
	return &Move{
		Kind: kind, Op: rootOp, Cost: rootCost,
		ChildOp: childOp, ChildCost: childCost, ChildCard: childCard,
		ChildRel: childRel, ChildRelID: m.RelID(childRel),
	}
}

// inplaceModel builds a 4-table model and the scratch plan
// (t0 ⋈ t1) ⋈ (t2 ⋈ t3) for the in-place transformation tests.
func inplaceModel(t *testing.T) (*costmodel.Model, *plan.Plan) {
	t.Helper()
	rng := rand.New(rand.NewPCG(7, 7))
	cat := catalog.Generate(catalog.GenSpec{Tables: 4, Graph: catalog.Chain, Selectivity: catalog.Steinbrunn}, rng)
	m := costmodel.New(cat, costmodel.AllMetrics())
	outer := m.NewJoin(plan.MakeJoinOp(plan.Hash, true), m.NewScan(0, plan.SeqScan), m.NewScan(1, plan.PinScan))
	inner := m.NewJoin(plan.MakeJoinOp(plan.SortMerge, true), m.NewScan(2, plan.SeqScan), m.NewScan(3, plan.SeqScan))
	root := m.NewJoin(plan.MakeJoinOp(plan.BNL100, false), outer, inner)
	return m, plan.NewScratch().Import(root)
}

// checkApplied validates the rewritten tree and cross-checks every
// stored cost and cardinality against a bottom-up recosting.
func checkApplied(t *testing.T, m *costmodel.Model, n *plan.Plan) {
	t.Helper()
	if err := n.Validate(); err != nil {
		t.Fatalf("invalid plan after Apply: %v", err)
	}
	re := m.Recost(n)
	if !re.Cost.Equal(n.Cost) {
		t.Fatalf("stored cost %v differs from recost %v", n.Cost, re.Cost)
	}
	if re.Card != n.Card {
		t.Fatalf("stored card %g differs from recost %g", n.Card, re.Card)
	}
}

func TestApplyAndUndoAllKinds(t *testing.T) {
	m, root := inplaceModel(t)
	before := root.String()
	beforeCost := root.Cost

	cases := []struct {
		name string
		mv   func() *Move
	}{
		{"opExchange", func() *Move {
			op := plan.MakeJoinOp(plan.GraceHash, false)
			return &Move{Kind: OpExchange, Op: op, Cost: m.JoinCost(op, root.Outer, root.Inner, root.Card)}
		}},
		{"commute", func() *Move {
			op := plan.MakeJoinOp(plan.Hash, false)
			return &Move{Kind: Commute, Op: op, Cost: m.JoinCost(op, root.Inner, root.Outer, root.Card)}
		}},
		{"assocLeft", func() *Move {
			cop := plan.MakeJoinOp(plan.Hash, false)
			rop := PickRootOp(root.Join, cop.Output())
			return buildMove(m, AssocLeft, rop, cop, root.Outer.Inner, root.Inner, root.Outer.Outer, true, root.Card)
		}},
		{"exchangeLeft", func() *Move {
			cop := plan.MakeJoinOp(plan.SortMerge, true)
			rop := PickRootOp(root.Join, root.Outer.Inner.Output)
			return buildMove(m, ExchangeLeft, rop, cop, root.Outer.Outer, root.Inner, root.Outer.Inner, false, root.Card)
		}},
		{"assocRight", func() *Move {
			cop := plan.MakeJoinOp(plan.GraceHash, true)
			rop := PickRootOp(root.Join, root.Inner.Inner.Output)
			return buildMove(m, AssocRight, rop, cop, root.Outer, root.Inner.Outer, root.Inner.Inner, false, root.Card)
		}},
		{"exchangeRight", func() *Move {
			cop := plan.MakeJoinOp(plan.Hash, true)
			rop := PickRootOp(root.Join, cop.Output())
			return buildMove(m, ExchangeRight, rop, cop, root.Outer, root.Inner.Inner, root.Inner.Outer, true, root.Card)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mv := tc.mv()
			u := Apply(root, mv)
			if root.String() == before && tc.name != "opExchange" {
				t.Fatal("Apply changed nothing")
			}
			if !root.Cost.Equal(mv.Cost) {
				t.Fatalf("applied cost %v, move predicted %v", root.Cost, mv.Cost)
			}
			checkApplied(t, m, root)
			u.Revert()
			if root.String() != before || !root.Cost.Equal(beforeCost) {
				t.Fatalf("Undo did not restore the plan:\nwant %s\ngot  %s", before, root.String())
			}
			checkApplied(t, m, root)
		})
	}
}

func TestApplyScanSwap(t *testing.T) {
	m, root := inplaceModel(t)
	leaf := root.Outer.Outer
	before := root.String()
	mv := &Move{Kind: ScanSwap, Scan: plan.PinScan, Cost: m.ScanCost(leaf.Table, plan.PinScan)}
	u := Apply(leaf, mv)
	if leaf.Scan != plan.PinScan || !leaf.Cost.Equal(m.ScanCost(leaf.Table, plan.PinScan)) {
		t.Fatal("scan swap not applied")
	}
	if err := leaf.Validate(); err != nil {
		t.Fatal(err)
	}
	u.Revert()
	if root.String() != before {
		t.Fatal("Undo did not restore the scan")
	}
}

func TestApplyPreservesRelAndCard(t *testing.T) {
	m, root := inplaceModel(t)
	rel, card := root.Rel, root.Card
	cop := plan.MakeJoinOp(plan.Hash, false)
	rop := PickRootOp(root.Join, cop.Output())
	mv := buildMove(m, AssocLeft, rop, cop, root.Outer.Inner, root.Inner, root.Outer.Outer, true, root.Card)
	Apply(root, mv)
	if root.Rel != rel || root.Card != card {
		t.Fatal("structural move changed the node's table set or cardinality")
	}
	if root.Inner.Rel != mv.ChildRel || root.Inner.RelID != mv.ChildRelID {
		t.Fatal("recycled child rel not installed")
	}
}

func TestApplyAllocFree(t *testing.T) {
	m, root := inplaceModel(t)
	cop := plan.MakeJoinOp(plan.Hash, false)
	rop := PickRootOp(root.Join, cop.Output())
	mv := buildMove(m, AssocLeft, rop, cop, root.Outer.Inner, root.Inner, root.Outer.Outer, true, root.Card)
	allocs := testing.AllocsPerRun(200, func() {
		u := Apply(root, mv)
		u.Revert()
	})
	if allocs != 0 {
		t.Errorf("Apply+Revert allocates: %v allocs/run, want 0", allocs)
	}
}

func TestSnapshotRevert(t *testing.T) {
	_, root := inplaceModel(t)
	before := *root
	u := Snapshot(root)
	root.Join = plan.MakeJoinOp(plan.GraceHash, true)
	root.Card = 42
	root.RelID = tableset.NoID
	u.Revert()
	if *root != before {
		t.Fatal("Snapshot.Revert did not restore the node")
	}
}
