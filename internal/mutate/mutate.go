// Package mutate implements the local plan transformations ("the standard
// mutations for bushy query plans", Steinbrunn et al.) used by Pareto
// climbing, simulated annealing and the other local-search optimizers.
//
// The rule set at a join node p = (O ⋈ I) is:
//
//	identity          p itself (so pruning can keep the unmutated plan)
//	operator exchange (O ⋈' I) for every other applicable join operator
//	commutativity     (I ⋈ O), over all applicable operators
//	associativity     ((A ⋈ B) ⋈ C) → (A ⋈ (B ⋈ C)) and its mirror
//	join exchange     ((A ⋈ B) ⋈ C) → ((A ⋈ C) ⋈ B) and its mirror
//
// and at a scan node: exchanging the scan operator. Structural rules
// create one new intermediate join node; we enumerate every applicable
// operator for that new node (different operators yield different cost
// trade-offs and output representations) while preferring to keep the
// original operator at the rebuilt root, falling back to the first
// applicable operator when the new inner representation makes the
// original inapplicable. This keeps the neighbor count per node bounded
// by a small constant times the number of operator implementations, as
// assumed by the complexity analysis (Lemma 2).
//
//rmq:deterministic
package mutate

import (
	"math/rand/v2"

	"rmq/internal/costmodel"
	"rmq/internal/plan"
)

// Append appends to dst all local mutations of the sub-plan p (with its
// current children), including p itself, and returns the extended slice.
// The caller owns dst; passing a reused buffer avoids allocation.
func Append(m *costmodel.Model, p *plan.Plan, dst []*plan.Plan) []*plan.Plan {
	dst = append(dst, p)
	if !p.IsJoin() {
		for _, op := range plan.AllScanOps() {
			if op != p.Scan {
				dst = append(dst, m.NewScan(p.Table, op))
			}
		}
		return dst
	}
	outer, inner := p.Outer, p.Inner
	// Every mutation of this node joins the same table set, so the
	// node's output cardinality p.Card applies to all rebuilt roots.
	rootCard := p.Card
	// Operator exchange.
	for _, op := range plan.JoinOpsFor(inner.Output) {
		if op != p.Join {
			dst = append(dst, m.NewJoinWithCard(op, outer, inner, rootCard))
		}
	}
	// Commutativity (over all applicable operators, which subsumes
	// commutativity composed with operator exchange).
	for _, op := range plan.JoinOpsFor(outer.Output) {
		dst = append(dst, m.NewJoinWithCard(op, inner, outer, rootCard))
	}
	// Structural rules. Let the current node be (A ⋈ B) ⋈ C or
	// A ⋈ (B ⋈ C); each rule reassociates one grandchild.
	if outer.IsJoin() {
		a, b := outer.Outer, outer.Inner
		c := inner
		// Associativity: (A ⋈ B) ⋈ C → A ⋈ (B ⋈ C).
		dst = appendStruct(m, dst, p.Join, rootCard, b, c, a, true)
		// Left join exchange: (A ⋈ B) ⋈ C → (A ⋈ C) ⋈ B.
		dst = appendStruct(m, dst, p.Join, rootCard, a, c, b, false)
	}
	if inner.IsJoin() {
		a := outer
		b, c := inner.Outer, inner.Inner
		// Associativity (mirror): A ⋈ (B ⋈ C) → (A ⋈ B) ⋈ C.
		dst = appendStruct(m, dst, p.Join, rootCard, a, b, c, false)
		// Right join exchange: A ⋈ (B ⋈ C) → B ⋈ (A ⋈ C).
		dst = appendStruct(m, dst, p.Join, rootCard, a, c, b, true)
	}
	return dst
}

// appendStruct emits the plans of one structural rule: a new child join
// (childOuter ⋈ childInner) over every applicable operator, combined with
// the untouched sub-plan `fixed` at a rebuilt root. If childIsInner, the
// root is (fixed ⋈ child); otherwise (child ⋈ fixed). The root keeps
// rootOp when applicable and falls back to the first applicable operator
// otherwise.
func appendStruct(m *costmodel.Model, dst []*plan.Plan, rootOp plan.JoinOp, rootCard float64, childOuter, childInner, fixed *plan.Plan, childIsInner bool) []*plan.Plan {
	childCard := m.JoinCard(childOuter, childInner)
	for _, cop := range plan.JoinOpsFor(childInner.Output) {
		child := m.NewJoinWithCard(cop, childOuter, childInner, childCard)
		var o, i *plan.Plan
		if childIsInner {
			o, i = fixed, child
		} else {
			o, i = child, fixed
		}
		dst = append(dst, m.NewJoinWithCard(PickRootOp(rootOp, i.Output), o, i, rootCard))
	}
	return dst
}

// PickRootOp keeps prefer if applicable for the given inner
// representation, else returns the first applicable operator. Callers
// rebuilding a join above replaced children use it to carry the original
// operator over whenever the new inner representation still allows it.
//
//rmq:hotpath
func PickRootOp(prefer plan.JoinOp, inner plan.OutputProp) plan.JoinOp {
	ops := plan.JoinOpsFor(inner)
	for _, op := range ops {
		if op == prefer {
			return op
		}
	}
	return ops[0]
}

// locator identifies one node of a plan by the root-to-node path of child
// directions (false = outer, true = inner).
type locator []bool

// collectLocators appends the locator of every node of p (pre-order).
func collectLocators(p *plan.Plan, prefix locator, out []locator) []locator {
	out = append(out, append(locator(nil), prefix...))
	if p.IsJoin() {
		out = collectLocators(p.Outer, append(prefix, false), out)
		out = collectLocators(p.Inner, append(prefix, true), out)
	}
	return out
}

// nodeAt resolves a locator to its sub-plan.
func nodeAt(p *plan.Plan, loc locator) *plan.Plan {
	for _, innerSide := range loc {
		if innerSide {
			p = p.Inner
		} else {
			p = p.Outer
		}
	}
	return p
}

// replaceAt rebuilds the complete plan with the sub-plan at loc replaced
// by sub. Ancestor operators are kept where applicable; when a changed
// output representation makes an ancestor's operator inapplicable, the
// first applicable operator is substituted.
func replaceAt(m *costmodel.Model, p *plan.Plan, loc locator, sub *plan.Plan) *plan.Plan {
	if len(loc) == 0 {
		return sub
	}
	var outer, inner *plan.Plan
	if loc[0] {
		outer = p.Outer
		inner = replaceAt(m, p.Inner, loc[1:], sub)
	} else {
		outer = replaceAt(m, p.Outer, loc[1:], sub)
		inner = p.Inner
	}
	return m.NewJoin(PickRootOp(p.Join, inner.Output), outer, inner)
}

// AllNeighbors returns every complete plan reachable from p by applying a
// single local mutation at a single node (excluding plans identical to p
// in structure and operators only when the mutation was the identity).
// It is used by tests to verify local Pareto optimality and by the naive
// climbing ablation.
func AllNeighbors(m *costmodel.Model, p *plan.Plan) []*plan.Plan {
	var out []*plan.Plan
	locs := collectLocators(p, nil, nil)
	var buf []*plan.Plan
	for _, loc := range locs {
		node := nodeAt(p, loc)
		buf = Append(m, node, buf[:0])
		for _, mutated := range buf {
			if mutated == node {
				continue // identity
			}
			out = append(out, replaceAt(m, p, loc, mutated))
		}
	}
	return out
}

// RandomNeighbor returns a complete plan differing from p by one random
// local mutation at a uniformly random node, or p itself if the chosen
// node admits no non-identity mutation (cannot happen for join nodes).
// It is the neighbor-sampling primitive of simulated annealing. The node
// is reservoir-sampled in a single traversal, keeping the call O(n).
func RandomNeighbor(m *costmodel.Model, p *plan.Plan, rng *rand.Rand) *plan.Plan {
	var chosen locator
	count := 0
	var prefix locator
	var walk func(q *plan.Plan)
	walk = func(q *plan.Plan) {
		count++
		if rng.IntN(count) == 0 {
			chosen = append(chosen[:0], prefix...)
		}
		if q.IsJoin() {
			prefix = append(prefix, false)
			walk(q.Outer)
			prefix[len(prefix)-1] = true
			walk(q.Inner)
			prefix = prefix[:len(prefix)-1]
		}
	}
	walk(p)
	node := nodeAt(p, chosen)
	buf := Append(m, node, nil)
	if len(buf) <= 1 {
		return p
	}
	mutated := buf[1+rng.IntN(len(buf)-1)]
	return replaceAt(m, p, chosen, mutated)
}
