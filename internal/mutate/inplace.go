package mutate

// In-place application of the local transformation rules on mutable
// (plan.Scratch-owned) nodes. The climbing hot path evaluates candidate
// mutations by cost alone (see core's move search), then applies the
// selected move here without constructing plan nodes: every rule rewrites
// at most two nodes — the mutated node itself and, for the structural
// rules, the child node the rule detaches, which is recycled in place as
// the rule's new intermediate join. Apply returns an Undo snapshot so
// speculative callers can revert a move at the same cost.
//
// Apply must only be used on trees the caller owns exclusively (Scratch
// trees are strict trees); applying a move to a shared immutable plan
// corrupts every plan aliasing the rewritten nodes.

import (
	"rmq/internal/cost"
	"rmq/internal/plan"
	"rmq/internal/tableset"
)

// MoveKind identifies one local transformation rule.
type MoveKind uint8

const (
	// NoMove is the zero MoveKind; applying it panics.
	NoMove MoveKind = iota
	// ScanSwap exchanges the scan operator of a scan node.
	ScanSwap
	// OpExchange replaces the join operator of a join node.
	OpExchange
	// Commute swaps outer and inner of a join node, installing operator
	// Op (enumerated over the operators applicable to the swapped
	// inputs).
	Commute
	// AssocLeft reassociates (A⋈B)⋈C into A⋈(B⋈C).
	AssocLeft
	// ExchangeLeft rewrites (A⋈B)⋈C into (A⋈C)⋈B.
	ExchangeLeft
	// AssocRight reassociates A⋈(B⋈C) into (A⋈B)⋈C.
	AssocRight
	// ExchangeRight rewrites A⋈(B⋈C) into B⋈(A⋈C).
	ExchangeRight
)

// Move describes one evaluated local transformation of a node, carrying
// every derived quantity the in-place application needs (costs and child
// cardinality come from the move search's evaluation, so Apply performs
// no cost model work).
type Move struct {
	Kind MoveKind
	// Scan is the new scan operator (ScanSwap only).
	Scan plan.ScanOp
	// Op is the new join operator of the mutated node.
	Op plan.JoinOp
	// Cost is the mutated node's new cost vector.
	Cost cost.Vector
	// ChildOp, ChildCost, ChildCard, ChildRel and ChildRelID describe the
	// intermediate join node a structural rule creates.
	ChildOp    plan.JoinOp
	ChildCost  cost.Vector
	ChildCard  float64
	ChildRel   tableset.Set
	ChildRelID tableset.ID
}

// Undo snapshots the nodes a Move rewrote; Revert restores them.
type Undo struct {
	node       *plan.Plan
	saved      plan.Plan
	child      *plan.Plan
	childSaved plan.Plan
}

// Revert restores the rewritten nodes to their pre-Apply state.
//
//rmq:hotpath
func (u *Undo) Revert() {
	if u.child != nil {
		*u.child = u.childSaved
	}
	if u.node != nil {
		*u.node = u.saved
	}
}

// Snapshot returns an Undo that restores n to its current state. Callers
// that rewrite nodes outside Apply (e.g. re-costing an ancestor after a
// child mutation) journal a Snapshot first so a speculative sequence of
// in-place changes can be reverted as a unit (in reverse order).
//
//rmq:hotpath
func Snapshot(n *plan.Plan) Undo { return Undo{node: n, saved: *n} }

// setChildJoin recycles the detached node r as the structural rule's new
// intermediate join (outer ⋈ inner) with the given operator and derived
// quantities. Aux is cleared: the node is a fresh combination.
func setChildJoin(r *plan.Plan, mv *Move, outer, inner *plan.Plan) {
	r.Outer, r.Inner = outer, inner
	r.Join = mv.ChildOp
	r.Output = mv.ChildOp.Output()
	r.Rel = mv.ChildRel
	r.RelID = mv.ChildRelID
	r.Card = mv.ChildCard
	r.Cost = mv.ChildCost
	r.Aux = 0
}

// Apply performs the move on node n in place, returning an Undo snapshot.
// n must be a mutable node of a tree the caller owns exclusively. The
// node's table set and cardinality are preserved by every rule; only the
// structural rules touch a second node (the recycled child).
//
//rmq:hotpath
func Apply(n *plan.Plan, mv *Move) Undo {
	u := Undo{node: n, saved: *n}
	switch mv.Kind {
	case ScanSwap:
		n.Scan = mv.Scan
		n.Cost = mv.Cost
		// Scan output is Materialized for every operator; no change.
	case OpExchange:
		n.Join = mv.Op
		n.Output = mv.Op.Output()
		n.Cost = mv.Cost
	case Commute:
		n.Outer, n.Inner = n.Inner, n.Outer
		n.Join = mv.Op
		n.Output = mv.Op.Output()
		n.Cost = mv.Cost
	case AssocLeft: // (A⋈B)⋈C → A⋈(B⋈C), recycling the old outer as B⋈C
		r := n.Outer
		u.child, u.childSaved = r, *r
		a, b, c := r.Outer, r.Inner, n.Inner
		setChildJoin(r, mv, b, c)
		n.Outer, n.Inner = a, r
	case ExchangeLeft: // (A⋈B)⋈C → (A⋈C)⋈B, recycling the old outer as A⋈C
		r := n.Outer
		u.child, u.childSaved = r, *r
		a, b, c := r.Outer, r.Inner, n.Inner
		setChildJoin(r, mv, a, c)
		n.Outer, n.Inner = r, b
	case AssocRight: // A⋈(B⋈C) → (A⋈B)⋈C, recycling the old inner as A⋈B
		r := n.Inner
		u.child, u.childSaved = r, *r
		a, b, c := n.Outer, r.Outer, r.Inner
		setChildJoin(r, mv, a, b)
		n.Outer, n.Inner = r, c
	case ExchangeRight: // A⋈(B⋈C) → B⋈(A⋈C), recycling the old inner as A⋈C
		r := n.Inner
		u.child, u.childSaved = r, *r
		a, b, c := n.Outer, r.Outer, r.Inner
		setChildJoin(r, mv, a, c)
		n.Outer, n.Inner = b, r
	default:
		panic("mutate: Apply of NoMove")
	}
	if mv.Kind != ScanSwap && mv.Kind != OpExchange && mv.Kind != Commute {
		n.Join = mv.Op
		n.Output = mv.Op.Output()
		n.Cost = mv.Cost
	}
	return u
}
