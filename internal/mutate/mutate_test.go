package mutate

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"rmq/internal/catalog"
	"rmq/internal/costmodel"
	"rmq/internal/plan"
	"rmq/internal/randplan"
)

func testModel(tb testing.TB, n int) *costmodel.Model {
	tb.Helper()
	rng := rand.New(rand.NewPCG(123, 456))
	cat := catalog.Generate(catalog.GenSpec{Tables: n, Graph: catalog.Cycle, Selectivity: catalog.Steinbrunn}, rng)
	return costmodel.New(cat, costmodel.AllMetrics())
}

func randomPlan(m *costmodel.Model, seed uint64) *plan.Plan {
	rng := rand.New(rand.NewPCG(seed, 999))
	return randplan.Random(m, m.Catalog().AllTables(), rng)
}

func TestAppendIncludesIdentity(t *testing.T) {
	m := testModel(t, 6)
	p := randomPlan(m, 1)
	muts := Append(m, p, nil)
	if len(muts) == 0 || muts[0] != p {
		t.Fatal("identity must be the first mutation")
	}
}

func TestAppendScanMutations(t *testing.T) {
	m := testModel(t, 3)
	s := m.NewScan(0, plan.SeqScan)
	muts := Append(m, s, nil)
	if len(muts) != plan.NumScanOps {
		t.Fatalf("scan mutations = %d, want %d", len(muts), plan.NumScanOps)
	}
	if muts[1].Scan == s.Scan {
		t.Error("non-identity scan mutation kept the operator")
	}
}

func TestAppendPreservesTableSet(t *testing.T) {
	m := testModel(t, 8)
	p := randomPlan(m, 2)
	var walk func(q *plan.Plan)
	walk = func(q *plan.Plan) {
		muts := Append(m, q, nil)
		for _, mu := range muts {
			if mu.Rel != q.Rel {
				t.Fatalf("mutation changed table set: %v -> %v", q.Rel, mu.Rel)
			}
			if err := mu.Validate(); err != nil {
				t.Fatalf("invalid mutation: %v", err)
			}
		}
		if q.IsJoin() {
			walk(q.Outer)
			walk(q.Inner)
		}
	}
	walk(p)
}

func TestAppendContainsCommutedPlan(t *testing.T) {
	m := testModel(t, 4)
	a, b := m.NewScan(0, plan.SeqScan), m.NewScan(1, plan.SeqScan)
	j := m.NewJoin(plan.MakeJoinOp(plan.Hash, false), a, b)
	muts := Append(m, j, nil)
	found := false
	for _, mu := range muts {
		if mu.IsJoin() && mu.Outer == b && mu.Inner == a {
			found = true
		}
	}
	if !found {
		t.Error("commutativity mutation missing")
	}
}

func TestAppendContainsOperatorExchange(t *testing.T) {
	m := testModel(t, 4)
	a, b := m.NewScan(0, plan.SeqScan), m.NewScan(1, plan.SeqScan)
	j := m.NewJoin(plan.MakeJoinOp(plan.Hash, false), a, b)
	ops := map[plan.JoinOp]bool{}
	for _, mu := range Append(m, j, nil) {
		if mu.IsJoin() && mu.Outer == a && mu.Inner == b {
			ops[mu.Join] = true
		}
	}
	if len(ops) != len(plan.JoinOpsFor(b.Output)) {
		t.Errorf("operator exchange covered %d ops, want %d", len(ops), len(plan.JoinOpsFor(b.Output)))
	}
}

func TestAppendAssociativity(t *testing.T) {
	// ((A ⋈ B) ⋈ C) must yield some plan shaped (A ⋈ (B ⋈ C)).
	m := testModel(t, 4)
	a, b, c := m.NewScan(0, plan.SeqScan), m.NewScan(1, plan.SeqScan), m.NewScan(2, plan.SeqScan)
	ab := m.NewJoin(plan.MakeJoinOp(plan.Hash, true), a, b)
	root := m.NewJoin(plan.MakeJoinOp(plan.Hash, false), ab, c)
	foundAssoc, foundExchange := false, false
	for _, mu := range Append(m, root, nil) {
		if !mu.IsJoin() || !mu.Inner.IsJoin() {
			continue
		}
		if mu.Outer == a && mu.Inner.Outer == b && mu.Inner.Inner == c {
			foundAssoc = true
		}
		if mu.Outer.IsJoin() {
			continue
		}
	}
	for _, mu := range Append(m, root, nil) {
		// Left join exchange: (A ⋈ C) ⋈ B.
		if mu.IsJoin() && mu.Outer.IsJoin() && mu.Outer.Outer == a && mu.Outer.Inner == c && mu.Inner == b {
			foundExchange = true
		}
	}
	if !foundAssoc {
		t.Error("associativity mutation missing")
	}
	if !foundExchange {
		t.Error("left join exchange mutation missing")
	}
}

func TestPickRootOp(t *testing.T) {
	hash := plan.MakeJoinOp(plan.Hash, false)
	bnl := plan.MakeJoinOp(plan.BNL10, false)
	if got := PickRootOp(hash, plan.Pipelined); got != hash {
		t.Errorf("applicable op replaced: %v", got)
	}
	if got := PickRootOp(bnl, plan.Pipelined); got.Alg().NeedsMaterializedInner() {
		t.Errorf("fallback still needs materialized inner: %v", got)
	}
	if got := PickRootOp(bnl, plan.Materialized); got != bnl {
		t.Errorf("BNL applicable but replaced: %v", got)
	}
}

func TestAllNeighborsValidAndDistinct(t *testing.T) {
	m := testModel(t, 6)
	p := randomPlan(m, 3)
	nbs := AllNeighbors(m, p)
	if len(nbs) == 0 {
		t.Fatal("no neighbors")
	}
	for _, nb := range nbs {
		if err := nb.Validate(); err != nil {
			t.Fatalf("invalid neighbor: %v", err)
		}
		if nb.Rel != p.Rel {
			t.Fatalf("neighbor joins %v, want %v", nb.Rel, p.Rel)
		}
	}
}

func TestAllNeighborsCountScalesWithNodes(t *testing.T) {
	m := testModel(t, 10)
	p := randomPlan(m, 4)
	nbs := AllNeighbors(m, p)
	nodes := p.NumNodes()
	// Each node contributes at least one non-identity mutation (scan op
	// exchange at leaves, operator exchange at joins).
	if len(nbs) < nodes {
		t.Errorf("%d neighbors for %d nodes", len(nbs), nodes)
	}
}

func TestRandomNeighborValid(t *testing.T) {
	m := testModel(t, 12)
	p := randomPlan(m, 5)
	rng := rand.New(rand.NewPCG(6, 6))
	for i := 0; i < 200; i++ {
		nb := RandomNeighbor(m, p, rng)
		if err := nb.Validate(); err != nil {
			t.Fatalf("invalid random neighbor: %v", err)
		}
		if nb.Rel != p.Rel {
			t.Fatalf("random neighbor changed table set")
		}
		p = nb // walk a chain to exercise varied shapes
	}
}

func TestRandomNeighborSingleScan(t *testing.T) {
	m := testModel(t, 3)
	p := m.NewScan(0, plan.SeqScan)
	rng := rand.New(rand.NewPCG(8, 8))
	nb := RandomNeighbor(m, p, rng)
	if nb.IsJoin() || nb.Rel != p.Rel {
		t.Fatalf("neighbor of scan = %v", nb)
	}
}

func TestRandomNeighborTouchesAllDepths(t *testing.T) {
	// The reservoir sampling must be able to mutate deep nodes, not just
	// the root: over many draws from a fixed left-deep plan, some
	// neighbor must differ from p in its innermost sub-plan.
	m := testModel(t, 5)
	p := m.NewScan(0, plan.SeqScan)
	for i := 1; i < 5; i++ {
		p = m.NewJoin(plan.MakeJoinOp(plan.Hash, false), p, m.NewScan(i, plan.SeqScan))
	}
	rng := rand.New(rand.NewPCG(10, 10))
	deepChanged := false
	for i := 0; i < 300 && !deepChanged; i++ {
		nb := RandomNeighbor(m, p, rng)
		// Deep change: the leftmost leaf's scan op differs or the deep
		// structure was rotated.
		q := nb
		depth := 0
		for q.IsJoin() {
			q = q.Outer
			depth++
		}
		if depth != 4 || q.Table != 0 || q.Scan != plan.SeqScan {
			deepChanged = true
		}
	}
	if !deepChanged {
		t.Error("no deep mutation observed in 300 draws")
	}
}

func TestQuickMutationsNeverChangeTableSet(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		n := 2 + int(seed%10)
		cat := catalog.Generate(catalog.GenSpec{Tables: n, Graph: catalog.Chain, Selectivity: catalog.Steinbrunn}, rng)
		m := costmodel.New(cat, costmodel.AllMetrics())
		p := randplan.Random(m, cat.AllTables(), rng)
		for _, nb := range AllNeighbors(m, p) {
			if nb.Rel != p.Rel || nb.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAppend50(b *testing.B) {
	m := testModel(b, 50)
	p := randomPlan(m, 9)
	var buf []*plan.Plan
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = Append(m, p, buf[:0])
	}
}

func BenchmarkRandomNeighbor100(b *testing.B) {
	m := testModel(b, 100)
	p := randomPlan(m, 10)
	rng := rand.New(rand.NewPCG(2, 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RandomNeighbor(m, p, rng)
	}
}
