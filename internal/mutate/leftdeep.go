package mutate

import (
	"rmq/internal/costmodel"
	"rmq/internal/plan"
)

// Space identifies a join order space. The paper evaluates the
// unconstrained bushy space and notes (Section 4.1) that the algorithm
// adapts to other spaces — e.g. left-deep plans — by exchanging the
// random plan generator and the local transformation set. This type
// selects the transformation set.
type Space int

const (
	// Bushy is the unconstrained bushy plan space (the paper's default).
	Bushy Space = iota
	// LeftDeep restricts plans to left-deep trees: the inner operand of
	// every join is a base table.
	LeftDeep
)

// String returns the conventional name of the plan space.
func (s Space) String() string {
	if s == LeftDeep {
		return "left-deep"
	}
	return "bushy"
}

// AppendIn is Append for a selectable plan space: mutations of p that
// stay inside the space (assuming p itself is inside it).
func AppendIn(space Space, m *costmodel.Model, p *plan.Plan, dst []*plan.Plan) []*plan.Plan {
	if space == LeftDeep {
		return appendLeftDeep(m, p, dst)
	}
	return Append(m, p, dst)
}

// appendLeftDeep emits the left-deep-preserving transformation rules:
//
//	identity            p itself
//	scan exchange       at leaves
//	operator exchange   at joins (shape unchanged)
//	inner swap          ((A ⋈ B) ⋈ C) → ((A ⋈ C) ⋈ B): exchanging the
//	                    relations joined at adjacent levels (the classic
//	                    "swap" rule for left-deep permutations)
//	bottom commute      (A ⋈ B) → (B ⋈ A) when both operands are tables
func appendLeftDeep(m *costmodel.Model, p *plan.Plan, dst []*plan.Plan) []*plan.Plan {
	dst = append(dst, p)
	if !p.IsJoin() {
		for _, op := range plan.AllScanOps() {
			if op != p.Scan {
				dst = append(dst, m.NewScan(p.Table, op))
			}
		}
		return dst
	}
	outer, inner := p.Outer, p.Inner
	rootCard := p.Card
	// Operator exchange.
	for _, op := range plan.JoinOpsFor(inner.Output) {
		if op != p.Join {
			dst = append(dst, m.NewJoinWithCard(op, outer, inner, rootCard))
		}
	}
	if outer.IsJoin() {
		// Inner swap keeps the tree left-deep: the new child (A ⋈ C)
		// has a base-table inner, as does the new root.
		a, b := outer.Outer, outer.Inner
		dst = appendStruct(m, dst, p.Join, rootCard, a, inner, b, false)
	} else {
		// Bottom-most join: commuting two base tables stays left-deep.
		for _, op := range plan.JoinOpsFor(outer.Output) {
			dst = append(dst, m.NewJoinWithCard(op, inner, outer, rootCard))
		}
	}
	return dst
}

// IsLeftDeep reports whether every join in the plan has a base-table
// inner operand.
func IsLeftDeep(p *plan.Plan) bool {
	for p.IsJoin() {
		if p.Inner.IsJoin() {
			return false
		}
		p = p.Outer
	}
	return true
}
