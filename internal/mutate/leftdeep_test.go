package mutate

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"rmq/internal/catalog"
	"rmq/internal/costmodel"
	"rmq/internal/plan"
	"rmq/internal/randplan"
)

func leftDeepPlan(m *costmodel.Model, seed uint64) *plan.Plan {
	rng := rand.New(rand.NewPCG(seed, 11))
	return randplan.RandomLeftDeep(m, m.Catalog().AllTables(), rng)
}

func TestSpaceString(t *testing.T) {
	if Bushy.String() != "bushy" || LeftDeep.String() != "left-deep" {
		t.Error("unexpected space names")
	}
}

func TestIsLeftDeep(t *testing.T) {
	m := testModel(t, 5)
	ld := leftDeepPlan(m, 1)
	if !IsLeftDeep(ld) {
		t.Error("left-deep generator produced non-left-deep plan")
	}
	a, b := m.NewScan(0, plan.SeqScan), m.NewScan(1, plan.SeqScan)
	c, d := m.NewScan(2, plan.SeqScan), m.NewScan(3, plan.SeqScan)
	bushy := m.NewJoin(plan.MakeJoinOp(plan.Hash, false),
		m.NewJoin(plan.MakeJoinOp(plan.Hash, true), a, b),
		m.NewJoin(plan.MakeJoinOp(plan.Hash, true), c, d))
	if IsLeftDeep(bushy) {
		t.Error("bushy plan classified as left-deep")
	}
	if !IsLeftDeep(a) {
		t.Error("scan must count as left-deep")
	}
}

func TestAppendInDispatches(t *testing.T) {
	m := testModel(t, 6)
	p := leftDeepPlan(m, 2)
	bushyMuts := AppendIn(Bushy, m, p, nil)
	ldMuts := AppendIn(LeftDeep, m, p, nil)
	if len(bushyMuts) <= len(ldMuts) {
		t.Errorf("bushy rule set (%d) should exceed left-deep (%d)", len(bushyMuts), len(ldMuts))
	}
}

func TestLeftDeepMutationsStayLeftDeep(t *testing.T) {
	m := testModel(t, 8)
	p := leftDeepPlan(m, 3)
	// Mutations at every node must preserve left-deep shape and validity.
	var walk func(q *plan.Plan)
	walk = func(q *plan.Plan) {
		for _, mu := range AppendIn(LeftDeep, m, q, nil) {
			if !IsLeftDeep(mu) {
				t.Fatalf("left-deep mutation produced bushy sub-plan: %v", mu)
			}
			if err := mu.Validate(); err != nil {
				t.Fatal(err)
			}
			if mu.Rel != q.Rel {
				t.Fatal("mutation changed table set")
			}
		}
		if q.IsJoin() {
			walk(q.Outer)
		}
	}
	walk(p)
}

func TestLeftDeepInnerSwap(t *testing.T) {
	// ((A ⋈ B) ⋈ C) must yield ((A ⋈ C) ⋈ B) among its mutations.
	m := testModel(t, 4)
	a, b, c := m.NewScan(0, plan.SeqScan), m.NewScan(1, plan.SeqScan), m.NewScan(2, plan.SeqScan)
	root := m.NewJoin(plan.MakeJoinOp(plan.Hash, false),
		m.NewJoin(plan.MakeJoinOp(plan.Hash, false), a, b), c)
	found := false
	for _, mu := range AppendIn(LeftDeep, m, root, nil) {
		if mu.IsJoin() && mu.Outer.IsJoin() &&
			mu.Outer.Outer == a && mu.Outer.Inner == c && mu.Inner == b {
			found = true
		}
	}
	if !found {
		t.Error("inner swap mutation missing")
	}
}

func TestLeftDeepBottomCommute(t *testing.T) {
	m := testModel(t, 3)
	a, b := m.NewScan(0, plan.SeqScan), m.NewScan(1, plan.SeqScan)
	j := m.NewJoin(plan.MakeJoinOp(plan.Hash, false), a, b)
	found := false
	for _, mu := range AppendIn(LeftDeep, m, j, nil) {
		if mu.IsJoin() && mu.Outer == b && mu.Inner == a {
			found = true
		}
	}
	if !found {
		t.Error("bottom commute mutation missing")
	}
}

func TestQuickLeftDeepClosure(t *testing.T) {
	// The left-deep rule set is closed over the left-deep space for any
	// random left-deep plan and any node.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		n := 2 + int(seed%10)
		cat := catalog.Generate(catalog.GenSpec{Tables: n, Graph: catalog.Chain, Selectivity: catalog.Steinbrunn}, rng)
		m := costmodel.New(cat, costmodel.AllMetrics())
		p := randplan.RandomLeftDeep(m, cat.AllTables(), rng)
		if !IsLeftDeep(p) {
			return false
		}
		for _, mu := range AppendIn(LeftDeep, m, p, nil) {
			if !IsLeftDeep(mu) || mu.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
