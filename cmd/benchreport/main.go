// Command benchreport runs, records and compares RMQ benchmarks in the
// machine-readable benchio JSON schema. It is the single entry point the
// Makefile and CI use, so local runs and the CI gate produce and consume
// identical files.
//
//	benchreport run    [-bench re] [-packages p] [-benchtime t] [-count n] [-timeout d] [-label s] [-out file]
//	benchreport import [-label s] [-out file] [input.txt]
//	benchreport diff   [-threshold f] old.json new.json
//
// run executes `go test -run ^$ -bench ... -benchmem` on the given
// packages, streams the raw output to stderr, and writes the parsed
// report to -out (default BENCH_<yyyy-mm-dd>.json). import parses
// already-captured `go test -bench` output (stdin or a file) into the
// same schema. diff compares two reports and exits non-zero if any
// benchmark present in both regressed by more than the threshold —
// that exit code is the CI gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"rmq/internal/benchio"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = runCmd(os.Args[2:])
	case "import":
		err = importCmd(os.Args[2:])
	case "diff":
		err = diffCmd(os.Args[2:])
	case "-h", "--help", "help":
		usage()
		return
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  benchreport run    [-bench re] [-packages p] [-benchtime t] [-count n] [-timeout d] [-label s] [-out file]
  benchreport import [-label s] [-out file] [input.txt]
  benchreport diff   [-threshold f] old.json new.json`)
}

// defaultOut names the report after the current date, the BENCH_<date>
// convention the repository tracks performance trajectories under.
func defaultOut() string {
	return fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
}

func newReport(label, command, cpu string, bms []benchio.Benchmark) *benchio.Report {
	return &benchio.Report{
		Schema:     benchio.Schema,
		Date:       time.Now().Format(time.RFC3339),
		Label:      label,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPU:        cpu,
		Command:    command,
		Benchmarks: bms,
	}
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	bench := fs.String("bench", ".", "benchmark regexp (go test -bench)")
	packages := fs.String("packages", "./...", "package pattern(s), space-separated")
	benchtime := fs.String("benchtime", "1x", "go test -benchtime value")
	count := fs.Int("count", 1, "go test -count value")
	timeout := fs.String("timeout", "60m", "go test -timeout value")
	label := fs.String("label", "", "free-form label stored in the report")
	out := fs.String("out", defaultOut(), "output JSON path")
	fs.Parse(args)

	cmdArgs := []string{"test", "-run", "^$", "-bench", *bench,
		"-benchmem", "-benchtime", *benchtime, "-timeout", *timeout}
	if *count > 1 {
		cmdArgs = append(cmdArgs, "-count", fmt.Sprint(*count))
	}
	cmdArgs = append(cmdArgs, strings.Fields(*packages)...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Stderr = os.Stderr

	var buf strings.Builder
	cmd.Stdout = io.MultiWriter(&buf, os.Stderr)
	fmt.Fprintln(os.Stderr, "benchreport: go", strings.Join(cmdArgs, " "))
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test: %w", err)
	}
	bms, cpu, err := benchio.ParseGoBench(strings.NewReader(buf.String()))
	if err != nil {
		return err
	}
	if len(bms) == 0 {
		return fmt.Errorf("no benchmark results parsed (pattern %q)", *bench)
	}
	r := newReport(*label, "go "+strings.Join(cmdArgs, " "), cpu, bms)
	if err := benchio.WriteFile(*out, r); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %s (%d benchmarks)\n", *out, len(bms))
	return nil
}

func importCmd(args []string) error {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	label := fs.String("label", "", "free-form label stored in the report")
	out := fs.String("out", defaultOut(), "output JSON path")
	fs.Parse(args)

	in := os.Stdin
	source := "stdin"
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
		source = fs.Arg(0)
	}
	bms, cpu, err := benchio.ParseGoBench(in)
	if err != nil {
		return err
	}
	if len(bms) == 0 {
		return fmt.Errorf("no benchmark results parsed from %s", source)
	}
	r := newReport(*label, "import "+source, cpu, bms)
	if err := benchio.WriteFile(*out, r); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchreport: wrote %s (%d benchmarks)\n", *out, len(bms))
	return nil
}

func diffCmd(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.2, "ns/op regression threshold (0.2 = +20%)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff needs exactly two report files, got %d", fs.NArg())
	}
	old, err := benchio.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := benchio.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	deltas, regressed := benchio.Diff(old, cur, *threshold)
	if len(deltas) == 0 {
		return fmt.Errorf("no common benchmarks between %s and %s", fs.Arg(0), fs.Arg(1))
	}
	fmt.Print(benchio.FormatDeltas(deltas, *threshold))
	if regressed {
		return fmt.Errorf("ns/op regression beyond +%.0f%%", *threshold*100)
	}
	fmt.Println("no regressions")
	return nil
}
