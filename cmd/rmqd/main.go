// Command rmqd serves multi-objective query optimization over
// HTTP/JSON: register catalogs, then optimize against them with
// per-request deadlines, iteration budgets, metric subsets, and
// optional streamed anytime snapshots. Each registered catalog is
// backed by one long-lived session with the shared plan cache enabled
// by default, so repeated queries warm-start.
//
//	rmqd -addr :8080
//
//	curl -s -X POST localhost:8080/catalogs \
//	    -d '{"generate":{"tables":20,"graph":"chain","seed":1}}'
//	curl -s -X POST localhost:8080/optimize \
//	    -d '{"catalog":"c1","timeout_ms":200,"metrics":["time","buffer"]}'
//	curl -s localhost:8080/stats
//
// Requests beyond -max-in-flight are rejected with 429 (backpressure
// beats queueing into the deadline); SIGTERM/SIGINT drain in-flight
// requests for up to -shutdown-grace before the process exits 0.
//
// With -snapshot-dir, the accumulated plan caches survive restarts:
// every -snapshot-interval (and once more after the final drain) each
// catalog's registration manifest and rmq-snap/v1 snapshot are written
// to the directory via atomic rename, off the request path; at startup
// the directory is replayed, re-registering every catalog under its old
// id with its session warm-started from the snapshot. A daemon restart
// then serves its first repeated query at warm latency instead of the
// ~9x cold path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rmq"
	"rmq/internal/faultinject"
	"rmq/internal/server"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		maxInFlight    = flag.Int("max-in-flight", 0, "admitted concurrent /optimize requests; beyond it 429 (0 = 2×GOMAXPROCS)")
		defaultTimeout = flag.Duration("default-timeout", 500*time.Millisecond, "optimization budget when a request names neither timeout_ms nor max_iterations")
		maxTimeout     = flag.Duration("max-timeout", 30*time.Second, "cap on any request budget (also bounds shutdown drain)")
		maxParallel    = flag.Int("max-parallelism", 0, "cap on per-request multi-start parallelism (0 = max(8, 4×GOMAXPROCS))")
		poolLimit      = flag.Int("pool-limit", -1, "per-catalog cap on pooled warmed problem instances (-1 = adaptive)")
		retention      = flag.Float64("retention", 0, "default shared-cache retention α for catalogs that do not set one (0 = exact)")
		grace          = flag.Duration("shutdown-grace", 15*time.Second, "how long SIGTERM waits for in-flight requests before closing")
		snapshotDir    = flag.String("snapshot-dir", "", "directory for plan-cache checkpoints; restored at startup, written on a timer and at shutdown (empty = no persistence)")
		snapshotEvery  = flag.Duration("snapshot-interval", time.Minute, "how often the background checkpointer persists plan caches to -snapshot-dir")
		maxCacheBytes  = flag.Int64("max-cache-bytes", 0, "budget for the estimated memory of all plan caches; when exceeded the server tightens cache retention instead of growing (0 = unbounded)")
		allowFetch     = flag.Bool("allow-snapshot-fetch", false, "allow registrations carrying snapshot_url or replicate_from to fetch warm state from another rmqd (outbound requests to caller-supplied URLs)")
		replEvery      = flag.Duration("replicate-interval", time.Second, "how often catalogs registered with replicate_from pull cache deltas from their peers")
		faults         = flag.String("faults", "", "fault-injection profile for chaos runs, e.g. 'server.optimize=panic@0.01;checkpoint.write=enospc@0.3' (also via RMQ_FAULTS)")
		pprofAddr      = flag.String("pprof-addr", "", "listen address for the net/http/pprof diagnostics server (empty = disabled); bind it to loopback, the endpoints are unauthenticated")
		quiet          = flag.Bool("quiet", false, "suppress per-event logging")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "rmqd: ", log.LstdFlags)
	// Arm fault injection before anything else runs: -faults wins over
	// the RMQ_FAULTS environment variable when both are given.
	faultSpec := *faults
	if faultSpec == "" {
		faultSpec = os.Getenv("RMQ_FAULTS")
	}
	if spec, err := faultinject.FromEnv(faultSpec); err != nil {
		logger.Fatalf("bad fault profile: %v", err)
	} else if spec != "" {
		logger.Printf("FAULT INJECTION ACTIVE: %s", spec)
	}
	cfg := server.Config{
		MaxInFlight:        *maxInFlight,
		DefaultTimeout:     *defaultTimeout,
		MaxTimeout:         *maxTimeout,
		MaxParallelism:     *maxParallel,
		DefaultRetention:   *retention,
		SnapshotDir:        *snapshotDir,
		MaxCacheBytes:      *maxCacheBytes,
		AllowSnapshotFetch: *allowFetch,
		ReplicateInterval:  *replEvery,
	}
	if !*quiet {
		cfg.Logf = logger.Printf
	}
	if *poolLimit >= 0 {
		cfg.SessionOptions = append(cfg.SessionOptions, rmq.WithPoolLimit(*poolLimit))
	}

	srv := server.New(cfg)
	if *snapshotDir != "" {
		// Replay persisted catalogs before accepting traffic, so clients
		// resume against the ids (and warm caches) they had before the
		// restart. Partial failures degrade to cold catalogs, not a dead
		// daemon.
		if err := srv.LoadCheckpoint(); err != nil {
			logger.Printf("checkpoint load: %v", err)
		}
	}

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// Header and body reads are bounded so trickled uploads cannot
		// pin connections; responses stay unbounded (SSE streams run
		// for the length of the optimization).
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Background checkpointer: periodic durable cuts of every catalog's
	// plan caches, entirely off the request path (the sessions are only
	// read under their own store locks). Stops with the signal context;
	// the post-drain flush below takes the final cut.
	if *snapshotDir != "" && *snapshotEvery > 0 {
		go func() {
			tick := time.NewTicker(*snapshotEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := srv.Checkpoint(); err != nil {
						logger.Printf("checkpoint: %v", err)
					}
				}
			}
		}()
	}

	// Profiling listener: a separate server on its own address so the
	// pprof endpoints never share a port (or a handler namespace) with
	// the serving API. Off by default; registration happens on an
	// explicit mux rather than http.DefaultServeMux so nothing else in
	// the process can leak handlers onto it.
	if *pprofAddr != "" {
		pprofMux := http.NewServeMux()
		pprofMux.HandleFunc("/debug/pprof/", pprof.Index)
		pprofMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pprofMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pprofMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pprofMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Addr: *pprofAddr, Handler: pprofMux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			logger.Printf("pprof on %s", *pprofAddr)
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("pprof serve: %v", err)
			}
		}()
		defer pprofSrv.Close()
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Printf("serving on %s (max in-flight %d, default timeout %v, max timeout %v)",
		*addr, cfg.MaxInFlight, cfg.DefaultTimeout, cfg.MaxTimeout)

	select {
	case err := <-errc:
		logger.Printf("serve: %v", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful shutdown: flip /readyz first so routers stop sending new
	// work, then stop accepting, drain in-flight requests (each bounded
	// by MaxTimeout anyway), then exit 0.
	srv.StartDrain()
	logger.Printf("signal received; draining for up to %v", *grace)
	shCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		logger.Printf("grace expired (%v); closing", err)
		httpSrv.Close()
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "rmqd: %v\n", err)
		os.Exit(1)
	}
	// Stop replication pullers before the final cut so no delta merge
	// races the snapshot writer.
	srv.Close()
	// Final checkpoint after the drain: every admitted request has
	// finished publishing into the caches, so this cut is what the next
	// boot warm-starts from.
	if *snapshotDir != "" {
		if err := srv.Checkpoint(); err != nil {
			logger.Printf("final checkpoint: %v", err)
		}
	}
	logger.Printf("shut down cleanly")
}
