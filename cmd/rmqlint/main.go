// rmqlint is the module's multichecker: it runs the internal/analysis
// passes — hotalloc, lockorder, detrand, ctxloop, benchtimer — over Go
// package patterns, plus (by default) a selected set of go vet passes,
// and exits non-zero on any finding. It is the static, CI-gated form
// of the invariants the test suite samples dynamically: the zero-alloc
// climb loop, the store→bucket lock order, bit-identical trajectories,
// cancelable loops and honest benchmark timing.
//
// Usage:
//
//	rmqlint [flags] [packages]
//
//	rmqlint ./...            lint the whole module (the CI invocation)
//	rmqlint -json ./...      machine-readable findings (rmq-lint/v1)
//	rmqlint -vet=false ./... analyzers only, skip the go vet passes
//
// The -json report mirrors the internal/benchio pattern — a schema-
// tagged document with one entry per finding (file/line/col/analyzer/
// message) — so future tooling can diff findings across commits the
// way cmd/benchreport diffs benchmarks.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"

	"rmq/internal/analysis"
	"rmq/internal/analysis/benchtimer"
	"rmq/internal/analysis/ctxloop"
	"rmq/internal/analysis/detrand"
	"rmq/internal/analysis/hotalloc"
	"rmq/internal/analysis/load"
	"rmq/internal/analysis/lockorder"
)

// Schema identifies the -json report format; bump on incompatible
// changes.
const Schema = "rmq-lint/v1"

// report is the -json document.
type report struct {
	Schema   string             `json:"schema"`
	Findings []analysis.Finding `json:"findings"`
}

// analyzers is the rmqlint suite.
var analyzers = []*analysis.Analyzer{
	hotalloc.Analyzer,
	lockorder.Analyzer,
	detrand.Analyzer,
	ctxloop.Analyzer,
	benchtimer.Analyzer,
}

// vetPasses are the go vet analyzers run alongside the suite: the ones
// that guard the same invariant classes (lock copies, atomic misuse)
// plus cheap always-valuable checks. Naming specific passes keeps the
// run identical across Go releases.
var vetPasses = []string{"-copylocks", "-atomic", "-bools", "-nilfunc", "-unusedresult"}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a rmq-lint/v1 JSON report on stdout")
	vet := flag.Bool("vet", true, "also run the selected go vet passes")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rmqlint [-json] [-vet=false] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, fset, err := load.Load(load.Config{Tests: true}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmqlint:", err)
		os.Exit(2)
	}
	findings := analysis.NewDriver(analyzers...).Run(fset, pkgs)

	if *vet {
		vetFindings, err := runVet(patterns)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmqlint: go vet:", err)
			os.Exit(2)
		}
		findings = append(findings, vetFindings...)
		sort.Slice(findings, func(i, j int) bool {
			a, b := findings[i], findings[j]
			if a.File != b.File {
				return a.File < b.File
			}
			return a.Line < b.Line
		})
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(report{Schema: Schema, Findings: findings}); err != nil {
			fmt.Fprintln(os.Stderr, "rmqlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "rmqlint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// runVet executes the selected go vet passes with -json output and
// folds their diagnostics into rmqlint findings.
func runVet(patterns []string) ([]analysis.Finding, error) {
	args := append([]string{"vet", "-json"}, vetPasses...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	runErr := cmd.Run()

	// `go vet -json` writes a stream of per-package JSON objects to
	// stderr, each mapping package → analyzer → diagnostics, separated
	// by "# pkg" comment lines.
	var findings []analysis.Finding
	dec := json.NewDecoder(bytes.NewReader(stripComments(stderr.Bytes())))
	for dec.More() {
		var perPkg map[string]map[string][]struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		if err := dec.Decode(&perPkg); err != nil {
			// Non-JSON stderr means vet itself failed (bad flag, build
			// error); surface it.
			return nil, fmt.Errorf("%v\n%s", runErr, stderr.String())
		}
		for _, byAnalyzer := range perPkg {
			for name, diags := range byAnalyzer {
				for _, d := range diags {
					f := analysis.Finding{Analyzer: "vet/" + name, Message: d.Message}
					f.File, f.Line, f.Col = splitPosn(d.Posn)
					findings = append(findings, f)
				}
			}
		}
	}
	return findings, nil
}

// stripComments drops the "# package" separator lines go vet -json
// interleaves with the JSON objects.
func stripComments(b []byte) []byte {
	var keep [][]byte
	for _, line := range bytes.Split(b, []byte("\n")) {
		if !bytes.HasPrefix(bytes.TrimSpace(line), []byte("#")) {
			keep = append(keep, line)
		}
	}
	return bytes.Join(keep, []byte("\n"))
}

// splitPosn parses a "file:line:col" vet position.
func splitPosn(posn string) (string, int, int) {
	parts := strings.Split(posn, ":")
	if len(parts) < 3 {
		return posn, 0, 0
	}
	var line, col int
	fmt.Sscanf(parts[len(parts)-2], "%d", &line)
	fmt.Sscanf(parts[len(parts)-1], "%d", &col)
	return strings.Join(parts[:len(parts)-2], ":"), line, col
}
