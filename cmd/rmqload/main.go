// Command rmqload replays a mixed optimization workload against an
// rmqd server and reports sustained throughput and tail latency, split
// into the two traffic classes a serving deployment cares about:
//
//   - warm: repeated queries against a pool of pre-registered catalogs,
//     answered from each catalog session's shared plan cache at a warm
//     iteration budget;
//   - cold: fresh queries — a newly registered catalog optimized once
//     at the full cold budget, then dropped.
//
// Requests also rotate through metric subsets (all three, time+buffer,
// time), exercising the per-subset stores of each session. 429
// rejections (admission control) are counted separately from errors.
//
//	rmqload -addr http://localhost:8080 -clients 8 -duration 10s
//	rmqload -duration 5s            # no -addr: serves in-process
//
// With -timeout-ms the workload switches from iteration budgets to
// deadline budgets: every request carries timeout_ms and latency
// converges to the deadline while quality varies — the anytime serving
// mode.
//
// The -assert-* flags turn a run into a pass/fail check for CI: after
// reporting, the process exits 1 if a tail-latency bound, the error
// rate, or the minimum request count is violated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rmq/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "", "rmqd base URL; empty starts an in-process server")
		duration  = flag.Duration("duration", 10*time.Second, "how long to generate load")
		clients   = flag.Int("clients", 4, "concurrent client goroutines")
		catalogs  = flag.Int("catalogs", 4, "pre-registered warm catalogs")
		tables    = flag.Int("tables", 24, "tables per catalog")
		graph     = flag.String("graph", "chain", "join graph shape: chain, cycle or star")
		repeat    = flag.Float64("repeat", 0.8, "fraction of requests that repeat a warm catalog")
		coldIters = flag.Int("cold-iters", 400, "iteration budget of cold (fresh-catalog) requests")
		warmIters = flag.Int("warm-iters", 40, "iteration budget of warm (repeated) requests")
		timeoutMS = flag.Float64("timeout-ms", 0, "use a deadline budget (ms) for every request instead of iteration budgets")
		seed      = flag.Uint64("seed", 1, "base seed for catalogs and requests")

		assertWarmP99  = flag.Duration("assert-warm-p99", 0, "exit 1 if warm-class p99 latency exceeds this (0 = no check)")
		assertColdP99  = flag.Duration("assert-cold-p99", 0, "exit 1 if cold-class p99 latency exceeds this (0 = no check)")
		assertErrRate  = flag.Float64("assert-max-error-rate", -1, "exit 1 if errors/requests across both classes exceeds this fraction (negative = no check)")
		assertMinTotal = flag.Int("assert-min-requests", 0, "exit 1 if fewer total requests completed (0 = no check)")
	)
	flag.Parse()

	base := *addr
	if base == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatalf("%v", err)
		}
		srv := &http.Server{Handler: server.New(server.Config{MaxInFlight: 2 * *clients})}
		go srv.Serve(ln)
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Printf("in-process rmqd on %s\n", base)
	}
	base = strings.TrimSuffix(base, "/")
	client := &http.Client{}

	// Pre-register the warm catalog pool and prime each with one cold
	// call so the measured warm class is actually warm.
	warmIDs := make([]string, *catalogs)
	for i := range warmIDs {
		warmIDs[i] = registerCatalog(client, base, *tables, *graph, *seed+uint64(i))
		if *timeoutMS == 0 {
			if _, _, err := optimize(client, base, request{
				Catalog: warmIDs[i], MaxIterations: *coldIters, Seed: *seed, Metrics: metricSubsets[0],
			}); err != nil {
				fatalf("priming %s: %v", warmIDs[i], err)
			}
		}
	}
	fmt.Printf("workload: %d warm catalogs × %d tables (%s), repeat %.2f, %d clients, %v\n",
		*catalogs, *tables, *graph, *repeat, *clients, *duration)

	var (
		wg       sync.WaitGroup
		reqSeed  atomic.Uint64
		rejected atomic.Uint64
		results  = make([]classStats, *clients*2) // [client*2]: warm, cold
		deadline = time.Now().Add(*duration)
	)
	reqSeed.Store(*seed * 1000)
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(*seed, uint64(c)))
			warm, cold := &results[c*2], &results[c*2+1]
			for time.Now().Before(deadline) {
				req := request{
					Seed:    reqSeed.Add(1),
					Metrics: metricSubsets[rng.IntN(len(metricSubsets))],
				}
				if *timeoutMS > 0 {
					req.TimeoutMS = *timeoutMS
				}
				if rng.Float64() < *repeat {
					req.Catalog = warmIDs[rng.IntN(len(warmIDs))]
					if *timeoutMS == 0 {
						req.MaxIterations = *warmIters
					}
					warm.record(client, base, req, &rejected)
				} else {
					id := registerCatalog(client, base, *tables, *graph, req.Seed)
					req.Catalog = id
					if *timeoutMS == 0 {
						req.MaxIterations = *coldIters
					}
					cold.record(client, base, req, &rejected)
					deleteCatalog(client, base, id)
				}
			}
		}(c)
	}
	wg.Wait()

	var warm, cold classStats
	for c := 0; c < *clients; c++ {
		warm.merge(&results[c*2])
		cold.merge(&results[c*2+1])
	}
	fmt.Printf("\n%-6s %9s %7s %12s %9s %9s %9s %9s %7s\n",
		"class", "requests", "errors", "throughput", "p50", "p90", "p99", "max", "plans")
	warm.report("warm", *duration)
	cold.report("cold", *duration)
	if n := rejected.Load(); n > 0 {
		fmt.Printf("rejected with 429 (admission control): %d\n", n)
	}
	printServerStats(client, base)

	// CI assertions: every violated bound is reported before the
	// process exits 1, so a failing nightly run shows the full picture.
	failed := false
	failf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "rmqload: ASSERT FAILED: "+format+"\n", args...)
		failed = true
	}
	if *assertWarmP99 > 0 {
		if p99 := warm.quantile(0.99); p99 > *assertWarmP99 {
			failf("warm p99 %v exceeds %v", p99.Round(100*time.Microsecond), *assertWarmP99)
		}
	}
	if *assertColdP99 > 0 {
		if p99 := cold.quantile(0.99); p99 > *assertColdP99 {
			failf("cold p99 %v exceeds %v", p99.Round(100*time.Microsecond), *assertColdP99)
		}
	}
	total := len(warm.latencies) + len(cold.latencies)
	errs := warm.errors + cold.errors
	if *assertErrRate >= 0 && total+errs > 0 {
		if rate := float64(errs) / float64(total+errs); rate > *assertErrRate {
			failf("error rate %.4f (%d/%d) exceeds %.4f", rate, errs, total+errs, *assertErrRate)
		}
	}
	if *assertMinTotal > 0 && total < *assertMinTotal {
		failf("only %d requests completed, need at least %d", total, *assertMinTotal)
	}
	if failed {
		os.Exit(1)
	}
}

// metricSubsets rotates requests through metric subsets, exercising
// one shared store per subset in each catalog's session.
var metricSubsets = [][]string{nil, {"time", "buffer"}, {"time"}}

type request struct {
	Catalog       string   `json:"catalog"`
	TimeoutMS     float64  `json:"timeout_ms,omitempty"`
	MaxIterations int      `json:"max_iterations,omitempty"`
	Metrics       []string `json:"metrics,omitempty"`
	Seed          uint64   `json:"seed"`
}

type classStats struct {
	latencies []time.Duration
	plans     int
	errors    int
}

func (cs *classStats) record(client *http.Client, base string, req request, rejected *atomic.Uint64) {
	start := time.Now()
	plans, status, err := optimize(client, base, req)
	if status == http.StatusTooManyRequests {
		rejected.Add(1)
		return
	}
	if err != nil {
		cs.errors++
		return
	}
	cs.latencies = append(cs.latencies, time.Since(start))
	cs.plans += plans
}

func (cs *classStats) merge(other *classStats) {
	cs.latencies = append(cs.latencies, other.latencies...)
	cs.plans += other.plans
	cs.errors += other.errors
}

// quantile returns the p-quantile latency (nearest rank), or 0 with no
// samples. It sorts in place; callers only read latencies afterwards.
func (cs *classStats) quantile(p float64) time.Duration {
	n := len(cs.latencies)
	if n == 0 {
		return 0
	}
	slices.Sort(cs.latencies)
	idx := int(p*float64(n)+0.5) - 1
	return cs.latencies[max(0, min(idx, n-1))]
}

func (cs *classStats) report(name string, elapsed time.Duration) {
	n := len(cs.latencies)
	if n == 0 {
		fmt.Printf("%-6s %9d %7d %12s\n", name, 0, cs.errors, "-")
		return
	}
	fmt.Printf("%-6s %9d %7d %10.1f/s %9v %9v %9v %9v %7.1f\n",
		name, n, cs.errors, float64(n)/elapsed.Seconds(),
		cs.quantile(0.50).Round(100*time.Microsecond), cs.quantile(0.90).Round(100*time.Microsecond),
		cs.quantile(0.99).Round(100*time.Microsecond), cs.latencies[n-1].Round(100*time.Microsecond),
		float64(cs.plans)/float64(n))
}

func registerCatalog(client *http.Client, base string, tables int, graph string, seed uint64) string {
	body := fmt.Sprintf(`{"generate":{"tables":%d,"graph":%q,"seed":%d}}`, tables, graph, seed)
	resp, err := client.Post(base+"/catalogs", "application/json", strings.NewReader(body))
	if err != nil {
		fatalf("register: %v", err)
	}
	defer resp.Body.Close()
	var info struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil || info.ID == "" {
		fatalf("register: status %d, err %v", resp.StatusCode, err)
	}
	return info.ID
}

func deleteCatalog(client *http.Client, base, id string) {
	req, _ := http.NewRequest(http.MethodDelete, base+"/catalogs/"+id, nil)
	resp, err := client.Do(req)
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

func optimize(client *http.Client, base string, req request) (plans, status int, err error) {
	body, _ := json.Marshal(req)
	resp, err := client.Post(base+"/optimize", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return 0, resp.StatusCode, fmt.Errorf("status %d: %s", resp.StatusCode, data)
	}
	var or struct {
		Plans []json.RawMessage `json:"plans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
		return 0, resp.StatusCode, err
	}
	if len(or.Plans) == 0 {
		return 0, resp.StatusCode, fmt.Errorf("empty frontier")
	}
	return len(or.Plans), resp.StatusCode, nil
}

func printServerStats(client *http.Client, base string) {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var stats struct {
		InFlight int    `json:"in_flight"`
		Served   uint64 `json:"served"`
		Rejected uint64 `json:"rejected"`
		Catalogs []struct {
			ID    string `json:"id"`
			Cache struct {
				Sets  int `json:"sets"`
				Plans int `json:"plans"`
			} `json:"cache"`
			Pool struct {
				Pooled    int `json:"pooled"`
				HighWater int `json:"high_water"`
			} `json:"pool"`
		} `json:"catalogs"`
	}
	if json.NewDecoder(resp.Body).Decode(&stats) != nil {
		return
	}
	fmt.Printf("server: served %d, rejected %d, in-flight %d\n", stats.Served, stats.Rejected, stats.InFlight)
	for _, c := range stats.Catalogs {
		fmt.Printf("  catalog %s: cache %d sets / %d plans, pool %d (high-water %d)\n",
			c.ID, c.Cache.Sets, c.Cache.Plans, c.Pool.Pooled, c.Pool.HighWater)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rmqload: "+format+"\n", args...)
	os.Exit(1)
}
