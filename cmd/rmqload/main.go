// Command rmqload replays a mixed optimization workload against an
// rmqd server and reports sustained throughput and tail latency, split
// into the two traffic classes a serving deployment cares about:
//
//   - warm: repeated queries against a pool of pre-registered catalogs,
//     answered from each catalog session's shared plan cache at a warm
//     iteration budget;
//   - cold: fresh queries — a newly registered catalog optimized once
//     at the full cold budget, then dropped.
//
// Requests also rotate through metric subsets (all three, time+buffer,
// time), exercising the per-subset stores of each session.
//
// All traffic goes through the retrying client package: 429 admission
// rejections are retried after the server's Retry-After hint, and
// transient failures of idempotent calls back off and retry. Each class
// reports its retry traffic (retried, abandoned) alongside latency, so
// a chaos run shows how much of the injected failure the retry layer
// absorbed and how much surfaced.
//
//	rmqload -addr http://localhost:8080 -clients 8 -duration 10s
//	rmqload -duration 5s            # no -addr: serves in-process
//	rmqload -endpoints http://n1:8080,http://n2:8080   # client-side failover
//
// With -endpoints, the client rotates between the listed servers when
// one stops answering; the failover column reports how often it did.
//
// With -timeout-ms the workload switches from iteration budgets to
// deadline budgets: every request carries timeout_ms and latency
// converges to the deadline while quality varies — the anytime serving
// mode.
//
// The -assert-* flags turn a run into a pass/fail check for CI: after
// reporting, the process exits 1 if a tail-latency bound, the error
// rate, or the minimum request count is violated.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rmq/client"
	"rmq/internal/api"
	"rmq/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "", "rmqd base URL; empty starts an in-process server")
		endpoints = flag.String("endpoints", "", "comma-separated rmqd base URLs; the client fails over between them on endpoint trouble (overrides -addr)")
		duration  = flag.Duration("duration", 10*time.Second, "how long to generate load")
		clients   = flag.Int("clients", 4, "concurrent client goroutines")
		catalogs  = flag.Int("catalogs", 4, "pre-registered warm catalogs")
		tables    = flag.Int("tables", 24, "tables per catalog")
		graph     = flag.String("graph", "chain", "join graph shape: chain, cycle or star")
		repeat    = flag.Float64("repeat", 0.8, "fraction of requests that repeat a warm catalog")
		coldIters = flag.Int("cold-iters", 400, "iteration budget of cold (fresh-catalog) requests")
		warmIters = flag.Int("warm-iters", 40, "iteration budget of warm (repeated) requests")
		timeoutMS = flag.Float64("timeout-ms", 0, "use a deadline budget (ms) for every request instead of iteration budgets")
		seed      = flag.Uint64("seed", 1, "base seed for catalogs and requests")
		retries   = flag.Int("max-retries", 4, "retry attempts per call before a request is abandoned")

		assertWarmP99  = flag.Duration("assert-warm-p99", 0, "exit 1 if warm-class p99 latency exceeds this (0 = no check)")
		assertColdP99  = flag.Duration("assert-cold-p99", 0, "exit 1 if cold-class p99 latency exceeds this (0 = no check)")
		assertErrRate  = flag.Float64("assert-max-error-rate", -1, "exit 1 if errors/requests across both classes exceeds this fraction (negative = no check)")
		assertMinTotal = flag.Int("assert-min-requests", 0, "exit 1 if fewer total requests completed (0 = no check)")
	)
	flag.Parse()

	var eps []string
	for _, e := range strings.Split(*endpoints, ",") {
		if e = strings.TrimSpace(e); e != "" {
			eps = append(eps, strings.TrimSuffix(e, "/"))
		}
	}
	base := *addr
	if len(eps) > 0 {
		base = eps[0]
	}
	if base == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatalf("%v", err)
		}
		srv := &http.Server{Handler: server.New(server.Config{MaxInFlight: 2 * *clients})}
		go srv.Serve(ln)
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Printf("in-process rmqd on %s\n", base)
	}
	base = strings.TrimSuffix(base, "/")

	// One Client per traffic class over a shared transport: the
	// connection pool is common, the retry accounting is per class.
	httpc := &http.Client{}
	warmC := &client.Client{Base: base, Endpoints: eps, HTTP: httpc, MaxRetries: *retries}
	coldC := &client.Client{Base: base, Endpoints: eps, HTTP: httpc, MaxRetries: *retries}
	ctx := context.Background()

	// Pre-register the warm catalog pool and prime each with one cold
	// call so the measured warm class is actually warm.
	warmIDs := make([]string, *catalogs)
	for i := range warmIDs {
		id, err := registerCatalog(ctx, coldC, *tables, *graph, *seed+uint64(i))
		if err != nil {
			fatalf("register: %v", err)
		}
		warmIDs[i] = id
		if *timeoutMS == 0 {
			s := *seed
			if _, err := coldC.Optimize(ctx, api.OptimizeRequest{
				Catalog: id, MaxIterations: *coldIters, Seed: &s,
			}); err != nil {
				fatalf("priming %s: %v", id, err)
			}
		}
	}
	fmt.Printf("workload: %d warm catalogs × %d tables (%s), repeat %.2f, %d clients, %v\n",
		*catalogs, *tables, *graph, *repeat, *clients, *duration)

	var (
		wg       sync.WaitGroup
		reqSeed  atomic.Uint64
		rejected atomic.Uint64
		results  = make([]classStats, *clients*2) // [client*2]: warm, cold
		deadline = time.Now().Add(*duration)
	)
	reqSeed.Store(*seed * 1000)
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(*seed, uint64(c)))
			warm, cold := &results[c*2], &results[c*2+1]
			for time.Now().Before(deadline) {
				s := reqSeed.Add(1)
				req := api.OptimizeRequest{
					Seed:    &s,
					Metrics: metricSubsets[rng.IntN(len(metricSubsets))],
				}
				if *timeoutMS > 0 {
					req.TimeoutMS = *timeoutMS
				}
				if rng.Float64() < *repeat {
					req.Catalog = warmIDs[rng.IntN(len(warmIDs))]
					if *timeoutMS == 0 {
						req.MaxIterations = *warmIters
					}
					warm.record(ctx, warmC, req, &rejected)
				} else {
					// A register failure (e.g. under fault injection) fails
					// this cold request, not the whole run.
					id, err := registerCatalog(ctx, coldC, *tables, *graph, s)
					if err != nil {
						cold.errors++
						continue
					}
					req.Catalog = id
					if *timeoutMS == 0 {
						req.MaxIterations = *coldIters
					}
					cold.record(ctx, coldC, req, &rejected)
					_ = coldC.Delete(ctx, id)
				}
			}
		}(c)
	}
	wg.Wait()

	var warm, cold classStats
	for c := 0; c < *clients; c++ {
		warm.merge(&results[c*2])
		cold.merge(&results[c*2+1])
	}
	fmt.Printf("\n%-6s %9s %7s %8s %10s %9s %12s %9s %9s %9s %9s %7s\n",
		"class", "requests", "errors", "retried", "abandoned", "failover", "throughput", "p50", "p90", "p99", "max", "plans")
	warm.report("warm", *duration, warmC.Metrics())
	cold.report("cold", *duration, coldC.Metrics())
	if n := rejected.Load(); n > 0 {
		fmt.Printf("abandoned as 429 after retries (admission control): %d\n", n)
	}
	printServerStats(ctx, warmC)

	// CI assertions: every violated bound is reported before the
	// process exits 1, so a failing nightly run shows the full picture.
	failed := false
	failf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "rmqload: ASSERT FAILED: "+format+"\n", args...)
		failed = true
	}
	if *assertWarmP99 > 0 {
		if p99 := warm.quantile(0.99); p99 > *assertWarmP99 {
			failf("warm p99 %v exceeds %v", p99.Round(100*time.Microsecond), *assertWarmP99)
		}
	}
	if *assertColdP99 > 0 {
		if p99 := cold.quantile(0.99); p99 > *assertColdP99 {
			failf("cold p99 %v exceeds %v", p99.Round(100*time.Microsecond), *assertColdP99)
		}
	}
	total := len(warm.latencies) + len(cold.latencies)
	errs := warm.errors + cold.errors
	if *assertErrRate >= 0 && total+errs > 0 {
		if rate := float64(errs) / float64(total+errs); rate > *assertErrRate {
			failf("error rate %.4f (%d/%d) exceeds %.4f", rate, errs, total+errs, *assertErrRate)
		}
	}
	if *assertMinTotal > 0 && total < *assertMinTotal {
		failf("only %d requests completed, need at least %d", total, *assertMinTotal)
	}
	if failed {
		os.Exit(1)
	}
}

// metricSubsets rotates requests through metric subsets, exercising
// one shared store per subset in each catalog's session.
var metricSubsets = [][]string{nil, {"time", "buffer"}, {"time"}}

type classStats struct {
	latencies []time.Duration
	plans     int
	errors    int
}

// record issues one optimization through the class's retrying client.
// Latency covers the whole call including retries — what a caller of
// the retry layer actually waits. A 429 that survives every retry
// counts as rejected, not as an error; everything else that the retry
// layer could not absorb is an error.
func (cs *classStats) record(ctx context.Context, c *client.Client, req api.OptimizeRequest, rejected *atomic.Uint64) {
	start := time.Now()
	resp, err := c.Optimize(ctx, req)
	if err != nil {
		var serr *client.StatusError
		if errors.As(err, &serr) && serr.Status == http.StatusTooManyRequests {
			rejected.Add(1)
			return
		}
		cs.errors++
		return
	}
	if len(resp.Plans) == 0 {
		cs.errors++
		return
	}
	cs.latencies = append(cs.latencies, time.Since(start))
	cs.plans += len(resp.Plans)
}

func (cs *classStats) merge(other *classStats) {
	cs.latencies = append(cs.latencies, other.latencies...)
	cs.plans += other.plans
	cs.errors += other.errors
}

// quantile returns the p-quantile latency (nearest rank), or 0 with no
// samples. It sorts in place; callers only read latencies afterwards.
func (cs *classStats) quantile(p float64) time.Duration {
	n := len(cs.latencies)
	if n == 0 {
		return 0
	}
	slices.Sort(cs.latencies)
	idx := int(p*float64(n)+0.5) - 1
	return cs.latencies[max(0, min(idx, n-1))]
}

func (cs *classStats) report(name string, elapsed time.Duration, m client.Metrics) {
	n := len(cs.latencies)
	if n == 0 {
		fmt.Printf("%-6s %9d %7d %8d %10d %9d %12s\n", name, 0, cs.errors, m.Retries, m.Abandoned, m.Failovers, "-")
		return
	}
	fmt.Printf("%-6s %9d %7d %8d %10d %9d %10.1f/s %9v %9v %9v %9v %7.1f\n",
		name, n, cs.errors, m.Retries, m.Abandoned, m.Failovers, float64(n)/elapsed.Seconds(),
		cs.quantile(0.50).Round(100*time.Microsecond), cs.quantile(0.90).Round(100*time.Microsecond),
		cs.quantile(0.99).Round(100*time.Microsecond), cs.latencies[n-1].Round(100*time.Microsecond),
		float64(cs.plans)/float64(n))
}

func registerCatalog(ctx context.Context, c *client.Client, tables int, graph string, seed uint64) (string, error) {
	info, err := c.Register(ctx, api.CatalogRequest{
		Generate: &api.GenerateSpec{Tables: tables, Graph: graph, Seed: seed},
	})
	if err != nil {
		return "", err
	}
	if info.ID == "" {
		return "", fmt.Errorf("register: empty catalog id")
	}
	return info.ID, nil
}

func printServerStats(ctx context.Context, c *client.Client) {
	stats, err := c.Stats(ctx)
	if err != nil {
		return
	}
	fmt.Printf("server: served %d, rejected %d, in-flight %d, contained panics %d\n",
		stats.Served, stats.Rejected, stats.InFlight, stats.Panics)
	if stats.MaxCacheBytes > 0 {
		fmt.Printf("  cache budget: %d / %d bytes, %d shed events\n",
			stats.CacheBytes, stats.MaxCacheBytes, stats.ShedEvents)
	}
	for _, q := range stats.Quarantined {
		fmt.Printf("  quarantined: %s (%s)\n", q.File, q.Reason)
	}
	if len(stats.Faults) > 0 {
		fmt.Printf("  injected faults fired:")
		for site, n := range stats.Faults {
			fmt.Printf(" %s=%d", site, n)
		}
		fmt.Println()
	}
	for _, c := range stats.Catalogs {
		fmt.Printf("  catalog %s: cache %d sets / %d plans, pool %d (high-water %d)\n",
			c.ID, c.Cache.Sets, c.Cache.Plans, c.Pool.Pooled, c.Pool.HighWater)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rmqload: "+format+"\n", args...)
	os.Exit(1)
}
