// Command rmqrouter fronts a set of rmqd nodes as one fault-tolerant
// optimization service. Each registered catalog is consistent-hashed
// onto a replica set (-replication nodes, default 2); the replicas pull
// plan-cache deltas from the primary continuously, so any of them can
// answer a query warm. Queries forward to the first ready replica and
// fail over on node failure; backpressure (429 + Retry-After) from a
// live node passes through untouched. A health prober with hysteresis
// decides which nodes receive traffic, and a repair loop re-grows
// placements that lost replicas, seeding the newcomer from the
// survivors.
//
//	rmqd -addr :8081 -allow-snapshot-fetch &
//	rmqd -addr :8082 -allow-snapshot-fetch &
//	rmqrouter -addr :8080 -nodes http://localhost:8081,http://localhost:8082
//
//	curl -s -X POST localhost:8080/catalogs \
//	    -d '{"generate":{"tables":20,"graph":"chain","seed":1}}'
//	curl -s -X POST localhost:8080/optimize -d '{"catalog":"r1","timeout_ms":200}'
//	curl -s localhost:8080/stats
//
// The nodes must run with -allow-snapshot-fetch: replica registration
// uses replicate_from, which makes nodes fetch from peer URLs.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rmq/internal/cluster"
	"rmq/internal/faultinject"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		nodes       = flag.String("nodes", "", "comma-separated rmqd base URLs, e.g. http://h1:8080,http://h2:8080 (required)")
		replication = flag.Int("replication", 2, "replicas per catalog (capped at the node count)")
		probeEvery  = flag.Duration("probe-interval", 500*time.Millisecond, "node health probe interval")
		downAfter   = flag.Int("down-after", 2, "consecutive failed probes before a node stops receiving traffic")
		upAfter     = flag.Int("up-after", 3, "consecutive good probes before a demoted node is re-admitted")
		repairEvery = flag.Duration("repair-interval", 2*time.Second, "how often degraded placements are re-grown onto spare nodes")
		grace       = flag.Duration("shutdown-grace", 15*time.Second, "how long SIGTERM waits for in-flight requests before closing")
		faults      = flag.String("faults", "", "fault-injection profile for chaos runs, e.g. 'router.forward=partition@0.05' (also via RMQ_FAULTS)")
		quiet       = flag.Bool("quiet", false, "suppress per-event logging")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "rmqrouter: ", log.LstdFlags)
	faultSpec := *faults
	if faultSpec == "" {
		faultSpec = os.Getenv("RMQ_FAULTS")
	}
	if spec, err := faultinject.FromEnv(faultSpec); err != nil {
		logger.Fatalf("bad fault profile: %v", err)
	} else if spec != "" {
		logger.Printf("FAULT INJECTION ACTIVE: %s", spec)
	}

	var nodeList []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodeList = append(nodeList, strings.TrimRight(n, "/"))
		}
	}
	cfg := cluster.Config{
		Nodes:       nodeList,
		Replication: *replication,
		Health: cluster.HealthConfig{
			Interval:  *probeEvery,
			DownAfter: *downAfter,
			UpAfter:   *upAfter,
		},
		RepairInterval: *repairEvery,
	}
	if !*quiet {
		cfg.Logf = logger.Printf
	}
	rt, err := cluster.NewRouter(cfg)
	if err != nil {
		logger.Fatalf("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rt.Start(ctx)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Printf("routing %d nodes on %s (replication %d)", len(nodeList), *addr, *replication)

	select {
	case err := <-errc:
		logger.Printf("serve: %v", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	logger.Printf("signal received; draining for up to %v", *grace)
	shCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		logger.Printf("grace expired (%v); closing", err)
		httpSrv.Close()
		os.Exit(1)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("%v", err)
		os.Exit(1)
	}
	logger.Printf("shut down cleanly")
}
