// Command experiments regenerates the tables behind every figure of the
// paper's evaluation (Figures 1-9). For each figure it runs the scenario
// grid — join graph shapes × query sizes × cost metric counts — over all
// eight algorithms and prints the median approximation error α per
// checkpoint, which is exactly the data the paper plots.
//
// The defaults scale the paper's 3 s / 30 s budgets and 20 test cases
// down so a full regeneration takes minutes; raise -budget, -long-budget
// and -cases for higher fidelity:
//
//	experiments                 # all figures, scaled defaults
//	experiments -fig 1,2        # only Figures 1 and 2
//	experiments -fig 8 -budget 3s -long-budget 30s -cases 20
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"time"

	"rmq/internal/harness"
)

func main() {
	tuning := harness.DefaultTuning()
	var (
		figs        = flag.String("fig", "all", "comma-separated figure ids (1-9) or 'all'")
		budget      = flag.Duration("budget", tuning.Budget, "per-algorithm budget for the short experiments (paper: 3s)")
		longBudget  = flag.Duration("long-budget", tuning.LongBudget, "per-algorithm budget for Figures 6-9 (paper: 30s)")
		cases       = flag.Int("cases", tuning.Cases, "test cases per data point (paper: 20)")
		casesSmall  = flag.Int("cases-small", tuning.CasesSmall, "test cases for the small-query Figures 8/9 (paper: 10)")
		checkpoints = flag.Int("checkpoints", tuning.Checkpoints, "measurement points per run")
		seed        = flag.Uint64("seed", tuning.BaseSeed, "base random seed")
		parallel    = flag.Int("parallel", 0, "concurrent test cases (0 = GOMAXPROCS)")
	)
	flag.Parse()

	tuning.Budget = *budget
	tuning.LongBudget = *longBudget
	tuning.Cases = *cases
	tuning.CasesSmall = *casesSmall
	tuning.Checkpoints = *checkpoints
	tuning.BaseSeed = *seed
	tuning.Parallel = *parallel

	ids, err := parseFigures(*figs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}

	// Ctrl-C cancels the remaining work; measurements collected up to
	// that point were already printed.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	all := harness.Figures(tuning)
	start := time.Now()
	for _, id := range ids {
		if ctx.Err() != nil {
			break
		}
		fmt.Printf("======== Figure %d ========\n", id)
		if id == 3 {
			runFigure3(ctx, all[id])
			continue
		}
		for _, s := range all[id] {
			if ctx.Err() != nil {
				break
			}
			res := harness.Run(ctx, s)
			fmt.Println(res.Table())
		}
	}
	if ctx.Err() != nil {
		fmt.Println("interrupted — remaining figures skipped")
	}
	fmt.Printf("total experiment time: %v\n", time.Since(start).Round(time.Second))
}

// runFigure3 prints the two panels of Figure 3: median climbing path
// length and median number of Pareto plans found by RMQ.
func runFigure3(ctx context.Context, scenarios []harness.Scenario) {
	fmt.Println("graph, tables -> median climb path length | median Pareto plans (RMQ, 3 metrics)")
	for _, s := range scenarios {
		if ctx.Err() != nil {
			return
		}
		res := harness.Run(ctx, s)
		fmt.Printf("%-28s path=%5.1f  pareto=%5.0f\n",
			s.Name, res.MedianPathLength, res.MedianParetoPlans)
	}
}

func parseFigures(arg string) ([]int, error) {
	if arg == "all" {
		return []int{1, 2, 3, 4, 5, 6, 7, 8, 9}, nil
	}
	var ids []int
	for _, part := range strings.Split(arg, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || id < 1 || id > 9 {
			return nil, fmt.Errorf("bad figure id %q", part)
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}
