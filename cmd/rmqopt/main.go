// Command rmqopt optimizes one (generated) query with a selectable
// multi-objective algorithm and prints the approximated Pareto frontier
// of cost trade-offs, the plan realizing each trade-off, and the plan a
// weighted preference would select. Ctrl-C cancels the run and prints
// the frontier found so far (anytime semantics).
//
// Examples:
//
//	rmqopt -tables 30 -graph star -metrics 3 -timeout 1s
//	rmqopt -tables 8 -algo dp -dp-alpha 1.01
//	rmqopt -tables 100 -algo nsga2 -seed 7
//	rmqopt -tables 100 -parallel 8 -progress -timeout 3s
//	rmqopt -tables 24 -workload 10 -shared-cache -iters 400 -warm-iters 40
//	rmqopt -tables 24 -shared-cache -snapshot-out warm.snap
//	rmqopt -tables 24 -shared-cache -snapshot-in warm.snap -iters 40
//
// The -workload form replays the query -workload times through one
// session and prints per-run latency: with -shared-cache the session
// retains the warmed plan cache across runs, so runs after the first
// return frontiers at least as good as the first run's from a fraction
// of the budget (-warm-iters) — the warm-start speedup is directly
// observable run over run. Without -warm-iters every run spends the
// full budget and warm runs convert it into extra precision instead of
// latency.
//
// -snapshot-out persists the session's shared plan caches to a file
// after the runs; -snapshot-in restores such a file into the fresh
// session before the first run, so even run 0 starts warm — the
// offline twin of rmqd's -snapshot-dir. Snapshots are bound to the
// catalog they were taken against (same -tables/-graph/-sel/-seed).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"rmq"
)

func main() {
	var (
		tables    = flag.Int("tables", 20, "number of tables to join")
		graph     = flag.String("graph", "chain", "join graph shape: chain, cycle or star")
		sel       = flag.String("sel", "steinbrunn", "selectivity model: steinbrunn or minmax")
		metrics   = flag.Int("metrics", 3, "number of cost metrics (1-3: time, buffer, disc)")
		algo      = flag.String("algo", "rmq", fmt.Sprintf("algorithm: %s", algoList()))
		dpAlpha   = flag.Float64("dp-alpha", 2, "approximation factor for -algo dp")
		timeout   = flag.Duration("timeout", time.Second, "optimization time budget")
		iters     = flag.Int("iters", 0, "optional cap on optimizer iterations per worker (0 = none)")
		seed      = flag.Uint64("seed", 1, "random seed for workload and optimizer")
		parallel  = flag.Int("parallel", 1, "number of parallel multi-start workers")
		progress  = flag.Bool("progress", false, "stream anytime frontier improvements to stderr")
		plans     = flag.Bool("plans", false, "print the operator tree of every frontier plan")
		workload  = flag.Int("workload", 1, "replay the query N times through one session, printing per-run latency")
		shared    = flag.Bool("shared-cache", false, "share the plan cache across workers and session runs (warm starts)")
		retain    = flag.Float64("retention", 1, "shared-cache retention precision α (≥ 1; coarser retains fewer plans)")
		warmIters = flag.Int("warm-iters", 0, "iteration cap for workload runs after the first (0 = same as -iters)")
		snapIn    = flag.String("snapshot-in", "", "restore the shared plan cache from this rmq-snap file before the first run")
		snapOut   = flag.String("snapshot-out", "", "write the shared plan cache to this rmq-snap file after the runs")
	)
	flag.Parse()

	spec := rmq.WorkloadSpec{Tables: *tables}
	var err error
	if spec.Graph, err = rmq.ParseGraph(*graph); err != nil {
		fatalf("%v", err)
	}
	if spec.Selectivity, err = rmq.ParseSelectivity(*sel); err != nil {
		fatalf("%v", err)
	}
	if *metrics < 1 || *metrics > 3 {
		fatalf("metrics must be 1-3")
	}
	all := []rmq.Metric{rmq.MetricTime, rmq.MetricBuffer, rmq.MetricDisc}

	cat := rmq.GenerateCatalog(spec, *seed)
	fmt.Printf("workload: %d tables, %s graph, %s selectivities (seed %d)\n",
		*tables, *graph, *sel, *seed)

	// Ctrl-C cancels the context; the anytime optimizer returns the
	// frontier it has found by then instead of aborting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := []rmq.Option{
		rmq.WithMetrics(all[:*metrics]...),
		rmq.WithAlgorithm(rmq.Algorithm(strings.ToLower(*algo))),
		rmq.WithDPAlpha(*dpAlpha),
		rmq.WithParallelism(*parallel),
		rmq.WithSharedCache(*shared),
		rmq.WithCacheRetention(*retain),
	}
	if *timeout > 0 {
		opts = append(opts, rmq.WithTimeout(*timeout))
	}
	if *iters > 0 {
		opts = append(opts, rmq.WithMaxIterations(*iters))
	}
	if *progress {
		opts = append(opts, rmq.OnImprovement(func(p rmq.Progress) {
			fmt.Fprintf(os.Stderr, "  [%8v] iter %6d: %d plans\n",
				p.Elapsed.Round(time.Millisecond), p.Iterations, len(p.Plans))
		}))
	}

	sess, err := rmq.NewSession(cat, opts...)
	if err != nil {
		fatalf("%v", err)
	}
	if *snapIn != "" {
		data, err := os.ReadFile(*snapIn)
		if err != nil {
			fatalf("%v", err)
		}
		if err := sess.Restore(data); err != nil {
			fatalf("restoring %s: %v", *snapIn, err)
		}
		fmt.Printf("restored plan cache from %s (%d bytes)\n", *snapIn, len(data))
	}
	if *workload < 1 {
		*workload = 1
	}
	// Replay the query through the session; each run gets its own seed so
	// the stream mimics independent requests for the same query. With
	// -shared-cache, later runs warm-start from the runs before them.
	var frontier *rmq.Frontier
	for run := 0; run < *workload; run++ {
		runOpts := []rmq.Option{rmq.WithSeed(*seed + uint64(run))}
		if run > 0 && *warmIters > 0 {
			runOpts = append(runOpts, rmq.WithMaxIterations(*warmIters))
		}
		start := time.Now()
		frontier, err = sess.Optimize(ctx, runOpts...)
		if err != nil {
			fatalf("%v", err)
		}
		if *workload > 1 {
			line := fmt.Sprintf("run %3d: %3d plans, %6d iters in %8v", run,
				len(frontier.Plans), frontier.Iterations, time.Since(start).Round(10*time.Microsecond))
			if *shared {
				cs := sess.CacheStats()
				line += fmt.Sprintf("  (cache: %d sets, %d plans)", cs.Sets, cs.Plans)
			}
			fmt.Println(line)
		}
		if ctx.Err() != nil {
			break
		}
	}
	if ctx.Err() != nil {
		fmt.Println("\ninterrupted — reporting the frontier found so far")
	}
	if *snapOut != "" {
		data, err := sess.Snapshot()
		if err != nil {
			fatalf("snapshot: %v", err)
		}
		if err := os.WriteFile(*snapOut, data, 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote plan cache to %s (%d bytes)\n", *snapOut, len(data))
	}

	fmt.Println()
	fmt.Print(frontier)
	if len(frontier.Plans) == 0 {
		fmt.Println("no plans found within the budget (DP needs small queries)")
		return
	}
	if *plans {
		fmt.Println()
		for i, p := range frontier.Plans {
			fmt.Printf("plan %d %v: %s\n", i, p.Cost, p)
		}
	}
	best := frontier.Best(map[rmq.Metric]float64{rmq.MetricTime: 1})
	fmt.Printf("\nfastest plan (time-weighted preference): cost %v\n  %s\n", best.Cost, best)
}

// algoList renders the registered algorithm names for the flag help.
func algoList() string {
	names := make([]string, 0, 8)
	for _, a := range rmq.Algorithms() {
		names = append(names, string(a))
	}
	return strings.Join(names, ", ")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rmqopt: "+format+"\n", args...)
	os.Exit(2)
}
