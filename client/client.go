// Package client is the retrying HTTP client for rmqd's API.
//
// It wraps the wire protocol of internal/server (types in internal/api)
// with the failure semantics a production caller needs and that every
// ad-hoc caller gets wrong: jittered exponential backoff, 429
// admission rejections honored via their Retry-After hint, transient
// transport errors retried only when the request is safe to repeat,
// and every sleep bounded by the caller's context deadline.
//
// Retry classification:
//
//   - 429: always retryable — the server rejected the request at
//     admission, before executing it, so repeating it cannot duplicate
//     work. The wait is the server's Retry-After hint when given (the
//     server derives it from its own load), the backoff schedule
//     otherwise.
//   - 5xx and transport errors after the request may have reached the
//     server: retried only for idempotent calls. Optimization is a pure
//     computation over a registered catalog, so Optimize, Stats,
//     Snapshot and Checkpoint retry; Register creates server state and
//     does not.
//   - Dial-level failures (the connection was never established):
//     retried for every call — the request never went out.
//   - Context cancellation and deadline expiry: never retried; the
//     context's error is returned immediately.
//
// Failover: when Endpoints lists more than one server, retries that
// indicate endpoint trouble (dial failures, transport errors, 5xx) move
// to the next endpoint in order instead of hammering the failed one;
// 429 stays put, because backpressure means the endpoint is alive and
// its Retry-After hint is about *its* load. A failed endpoint is
// remembered and skipped for Cooldown, after which it is probed again
// in its turn. The client is sticky: it keeps using the endpoint that
// last worked until that one fails.
//
// The zero value of Client is not usable; set Base (or Endpoints). One
// Client is one metrics domain: callers that want per-class retry
// accounting (as cmd/rmqload does) create one Client per class over a
// shared *http.Client, which carries the connection pool.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rmq/internal/api"
)

// Client calls one rmqd instance with retries. Fields are read-only
// after first use; the methods are safe for concurrent use.
type Client struct {
	// Base is the server's URL prefix, e.g. "http://127.0.0.1:8080".
	Base string
	// Endpoints lists alternative server URL prefixes for failover.
	// When set, calls rotate across them on endpoint failures and Base
	// is ignored; when empty, the client talks to Base alone.
	Endpoints []string
	// HTTP is the underlying transport; http.DefaultClient when nil.
	// Share one across Clients to share its connection pool.
	HTTP *http.Client
	// MaxRetries bounds retry attempts per call (not counting the first
	// attempt). Default 4.
	MaxRetries int
	// BaseDelay is the first backoff step; doubles per retry with full
	// jitter. Default 100ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (Retry-After hints included).
	// Default 5s.
	MaxDelay time.Duration
	// Cooldown is how long a failed endpoint is skipped in rotation
	// before being probed again. Default 2s.
	Cooldown time.Duration

	calls     atomic.Uint64
	retries   atomic.Uint64
	abandoned atomic.Uint64
	failovers atomic.Uint64

	mu        sync.Mutex
	cursor    int                  // index of the endpoint in current use
	downUntil map[string]time.Time // per-endpoint health memory
}

// Metrics is a snapshot of a Client's retry accounting.
type Metrics struct {
	// Calls is the number of API calls issued (not attempts).
	Calls uint64
	// Retries is the total number of retry attempts across calls.
	Retries uint64
	// Abandoned is the number of calls that ultimately failed — retries
	// exhausted, a non-retryable response, or context expiry.
	Abandoned uint64
	// Failovers is the number of times a retry moved to a different
	// endpoint because the one in use looked down.
	Failovers uint64
}

// Metrics returns the client's current retry accounting.
func (c *Client) Metrics() Metrics {
	return Metrics{
		Calls:     c.calls.Load(),
		Retries:   c.retries.Load(),
		Abandoned: c.abandoned.Load(),
		Failovers: c.failovers.Load(),
	}
}

// StatusError is a non-2xx response that was not retried (or survived
// every retry): the status code and the server's JSON error message.
type StatusError struct {
	Status  int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Message)
}

// Register registers a catalog (POST /catalogs). Registration creates
// server state, so it is retried only on dial-level failures where the
// request never reached the server.
func (c *Client) Register(ctx context.Context, req api.CatalogRequest) (api.CatalogInfo, error) {
	var info api.CatalogInfo
	err := c.callJSON(ctx, http.MethodPost, "/catalogs", false, req, &info)
	return info, err
}

// Optimize runs a non-streaming optimization (POST /optimize).
// Optimization is a pure computation, so transient failures retry.
func (c *Client) Optimize(ctx context.Context, req api.OptimizeRequest) (api.OptimizeResponse, error) {
	var resp api.OptimizeResponse
	err := c.callJSON(ctx, http.MethodPost, "/optimize", true, req, &resp)
	return resp, err
}

// Delete removes a catalog (DELETE /catalogs/{id}). Deletion is
// idempotent on the server (a repeat answers 404, which is not
// retried), so transient failures retry.
func (c *Client) Delete(ctx context.Context, catalogID string) error {
	_, err := c.call(ctx, http.MethodDelete, "/catalogs/"+url.PathEscape(catalogID), true, nil, nil)
	return err
}

// Stats fetches the server's telemetry (GET /stats).
func (c *Client) Stats(ctx context.Context) (api.StatsResponse, error) {
	var resp api.StatsResponse
	err := c.callJSON(ctx, http.MethodGet, "/stats", true, nil, &resp)
	return resp, err
}

// Healthz probes liveness (GET /healthz).
func (c *Client) Healthz(ctx context.Context) error {
	return c.callJSON(ctx, http.MethodGet, "/healthz", true, nil, nil)
}

// Snapshot fetches a catalog's current plan-cache snapshot stream
// (GET /catalogs/{id}/snapshot).
func (c *Client) Snapshot(ctx context.Context, catalogID string) ([]byte, error) {
	return c.call(ctx, http.MethodGet, "/catalogs/"+url.PathEscape(catalogID)+"/snapshot", true, nil, nil)
}

// Checkpoint persists a catalog's checkpoint on the server
// (POST /catalogs/{id}/snapshot). Checkpointing is idempotent.
func (c *Client) Checkpoint(ctx context.Context, catalogID string) error {
	_, err := c.call(ctx, http.MethodPost, "/catalogs/"+url.PathEscape(catalogID)+"/snapshot", true, nil, nil)
	return err
}

// FetchURL fetches an absolute URL with the client's retry policy —
// the rmqd-to-rmqd snapshot hand-off path, where the target is another
// server entirely and neither Base nor endpoint rotation applies.
func (c *Client) FetchURL(ctx context.Context, rawURL string) ([]byte, error) {
	return c.callOn(ctx, nil, http.MethodGet, rawURL, true, nil, nil)
}

// callJSON performs a call with a JSON request and response body.
func (c *Client) callJSON(ctx context.Context, method, path string, idempotent bool, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	raw, err := c.call(ctx, method, path, idempotent, body, jsonType(in))
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

func jsonType(in any) map[string]string {
	if in == nil {
		return nil
	}
	return map[string]string{"Content-Type": "application/json"}
}

// call resolves the endpoint set and runs the retry loop for a
// server-relative path.
func (c *Client) call(ctx context.Context, method, path string, idempotent bool, body []byte, hdr map[string]string) ([]byte, error) {
	eps := c.Endpoints
	if len(eps) == 0 {
		eps = []string{c.Base}
	}
	return c.callOn(ctx, eps, method, path, idempotent, body, hdr)
}

// callOn is the retry loop shared by every call. With endpoints, path
// is server-relative and retries may rotate; with eps == nil, path is
// an absolute URL and every attempt targets it. It returns the
// response body on 2xx.
func (c *Client) callOn(ctx context.Context, eps []string, method, path string, idempotent bool, body []byte, hdr map[string]string) ([]byte, error) {
	c.calls.Add(1)
	maxRetries := c.MaxRetries
	if maxRetries == 0 {
		maxRetries = 4
	}
	httpc := c.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
		}
		url := path
		ep := ""
		if eps != nil {
			ep = c.pick(eps)
			url = ep + path
		}
		data, retryIn, err := c.attempt(ctx, httpc, method, url, idempotent, body, hdr)
		if err == nil {
			c.markUp(ep)
			return data, nil
		}
		lastErr = err
		if retryIn < 0 || attempt >= maxRetries {
			break
		}
		if len(eps) > 1 && endpointTrouble(err) {
			c.markDown(ep, len(eps))
			if c.anyUp(eps) {
				// The next endpoint is fresh: skip the backoff (a
				// Retry-After hint is still about the failed endpoint).
				continue
			}
			// Every endpoint is cooling down — back off like a
			// single-endpoint client would.
		}
		if err := c.sleep(ctx, max(retryIn, c.backoff(attempt))); err != nil {
			lastErr = err
			break
		}
	}
	c.abandoned.Add(1)
	return nil, lastErr
}

// pick returns the endpoint to try: the one in current use, unless its
// cooldown is running, in which case the scan continues in rotation
// order. When every endpoint is cooling down the current one is used
// anyway — a probably-dead endpoint still beats not trying.
func (c *Client) pick(eps []string) string {
	if len(eps) == 1 {
		return eps[0]
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	for i := range eps {
		idx := (c.cursor + i) % len(eps)
		if until, down := c.downUntil[eps[idx]]; !down || now.After(until) {
			c.cursor = idx
			return eps[idx]
		}
	}
	return eps[c.cursor%len(eps)]
}

// markDown records an endpoint failure: start its cooldown and advance
// the rotation cursor so the next attempt lands elsewhere.
func (c *Client) markDown(ep string, n int) {
	c.failovers.Add(1)
	cd := c.Cooldown
	if cd <= 0 {
		cd = 2 * time.Second
	}
	c.mu.Lock()
	if c.downUntil == nil {
		c.downUntil = make(map[string]time.Time)
	}
	c.downUntil[ep] = time.Now().Add(cd)
	c.cursor = (c.cursor + 1) % n
	c.mu.Unlock()
}

// anyUp reports whether at least one endpoint is out of cooldown.
func (c *Client) anyUp(eps []string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	for _, ep := range eps {
		if until, down := c.downUntil[ep]; !down || now.After(until) {
			return true
		}
	}
	return false
}

// markUp clears an endpoint's health memory after a success, so a
// recovered endpoint is trusted again immediately.
func (c *Client) markUp(ep string) {
	if ep == "" {
		return
	}
	c.mu.Lock()
	delete(c.downUntil, ep)
	c.mu.Unlock()
}

// endpointTrouble reports whether a retryable failure indicts the
// endpoint rather than the request: transport errors and 5xx rotate;
// 429 is live backpressure and stays put.
func endpointTrouble(err error) bool {
	var serr *StatusError
	if errors.As(err, &serr) {
		return serr.Status >= 500
	}
	return true
}

// attempt performs one HTTP exchange. retryIn < 0 means the failure is
// not retryable; retryIn > 0 is a server-mandated minimum wait
// (Retry-After); retryIn == 0 leaves the wait to the backoff schedule.
func (c *Client) attempt(ctx context.Context, httpc *http.Client, method, url string, idempotent bool, body []byte, hdr map[string]string) (data []byte, retryIn time.Duration, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, -1, err
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := httpc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, -1, ctx.Err()
		}
		// A dial-level failure means the request never went out, so
		// even non-idempotent calls may retry; past that point only
		// idempotent ones can.
		if idempotent || isDialError(err) {
			return nil, 0, err
		}
		return nil, -1, err
	}
	defer resp.Body.Close()
	data, readErr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if readErr != nil {
			if idempotent {
				return nil, 0, readErr
			}
			return nil, -1, readErr
		}
		return data, 0, nil
	}
	serr := &StatusError{Status: resp.StatusCode, Message: errorMessage(data)}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests:
		// Rejected at admission — nothing executed, always retryable.
		// The server's Retry-After reflects its current load.
		return nil, retryAfter(resp), serr
	case resp.StatusCode >= 500 && idempotent:
		return nil, 0, serr
	default:
		return nil, -1, serr
	}
}

// backoff is the jittered exponential schedule: full jitter over
// BaseDelay·2^attempt, capped at MaxDelay.
func (c *Client) backoff(attempt int) time.Duration {
	base := c.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxDelay := c.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 5 * time.Second
	}
	d := base << min(attempt, 20)
	if d > maxDelay || d <= 0 {
		d = maxDelay
	}
	// Full jitter: uniform in [d/2, d] — decorrelates clients that were
	// rejected together so they do not return together.
	return d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
}

// sleep waits for d or until the context ends, whichever is first. d is
// not clamped to MaxDelay here: the backoff schedule caps itself, but a
// server's Retry-After hint must be honored in full — only the caller's
// context deadline cuts it short.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retryAfter parses a 429's Retry-After header (integer seconds).
func retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// errorMessage extracts the server's JSON error body, falling back to
// the raw text.
func errorMessage(data []byte) string {
	var er api.ErrorResponse
	if err := json.Unmarshal(data, &er); err == nil && er.Error != "" {
		return er.Error
	}
	return string(data)
}

// isDialError reports whether the transport failure happened before the
// request was sent — the connection was never established.
func isDialError(err error) bool {
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}
