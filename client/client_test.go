package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"rmq/internal/api"
)

// fastClient returns a client for srv with sub-millisecond backoff so
// retry tests run fast.
func fastClient(srv *httptest.Server) *Client {
	return &Client{
		Base:      srv.URL,
		HTTP:      srv.Client(),
		BaseDelay: 200 * time.Microsecond,
		MaxDelay:  2 * time.Millisecond,
	}
}

func TestOptimizeRetriesTransient500(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"catalog":"c1","metrics":["time"],"plans":[],"iterations":5,"elapsed_ms":1,"deadline_expired":false,"cache":{"sets":0,"plans":0}}`))
	}))
	defer srv.Close()
	c := fastClient(srv)
	resp, err := c.Optimize(context.Background(), api.OptimizeRequest{Catalog: "c1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Iterations != 5 {
		t.Errorf("iterations = %d", resp.Iterations)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server hit %d times, want 3", got)
	}
	m := c.Metrics()
	if m.Calls != 1 || m.Retries != 2 || m.Abandoned != 0 {
		t.Errorf("metrics = %+v, want 1 call, 2 retries, 0 abandoned", m)
	}
}

func TestRegisterNotRetriedOn500(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := fastClient(srv)
	_, err := c.Register(context.Background(), api.CatalogRequest{})
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Status != 500 || serr.Message != "boom" {
		t.Fatalf("err = %v, want StatusError 500 boom", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("non-idempotent register retried: %d hits", got)
	}
	if m := c.Metrics(); m.Abandoned != 1 {
		t.Errorf("metrics = %+v, want 1 abandoned", m)
	}
}

func TestRetryAfterHonoredOn429(t *testing.T) {
	var hits atomic.Int32
	var gap atomic.Int64
	var last atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 {
			gap.Store(now - prev)
		}
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"saturated"}`, http.StatusTooManyRequests)
			return
		}
		_, _ = w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	c := fastClient(srv)
	// Registration is not idempotent, but 429 is rejected at admission,
	// so even Register must retry it.
	if _, err := c.Register(context.Background(), api.CatalogRequest{}); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 2 {
		t.Fatalf("hits = %d, want 2", hits.Load())
	}
	if got := time.Duration(gap.Load()); got < 900*time.Millisecond {
		t.Errorf("retried after %v, want >= ~1s (Retry-After honored)", got)
	}
}

func TestContextDeadlineBoundsRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, `{"error":"saturated"}`, http.StatusTooManyRequests)
	}))
	defer srv.Close()
	c := fastClient(srv)
	c.MaxDelay = time.Hour // do not cap the server's hint
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Optimize(ctx, api.OptimizeRequest{Catalog: "c1"})
	if err == nil {
		t.Fatal("no error despite saturated server")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("call outlived its context by %v", elapsed)
	}
}

func TestDialErrorRetriedThenAbandoned(t *testing.T) {
	// A listener that was closed: connections are refused at dial time,
	// so even the non-idempotent register retries (the request never
	// went out) and eventually abandons.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close()
	c := &Client{
		Base:       srv.URL,
		BaseDelay:  100 * time.Microsecond,
		MaxDelay:   time.Millisecond,
		MaxRetries: 2,
	}
	_, err := c.Register(context.Background(), api.CatalogRequest{})
	if err == nil {
		t.Fatal("register against a dead server succeeded")
	}
	if m := c.Metrics(); m.Retries != 2 || m.Abandoned != 1 {
		t.Errorf("metrics = %+v, want 2 retries and 1 abandoned", m)
	}
}

func TestErrorBodyParsing(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown catalog \"nope\""}`, http.StatusNotFound)
	}))
	defer srv.Close()
	c := fastClient(srv)
	_, err := c.Stats(context.Background())
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Status != 404 || serr.Message != `unknown catalog "nope"` {
		t.Fatalf("err = %v", err)
	}
}

func TestFetchURL(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/catalogs/c1/snapshot" {
			http.NotFound(w, r)
			return
		}
		_, _ = w.Write([]byte("snapbytes"))
	}))
	defer srv.Close()
	c := fastClient(srv)
	data, err := c.FetchURL(context.Background(), srv.URL+"/catalogs/c1/snapshot")
	if err != nil || string(data) != "snapbytes" {
		t.Fatalf("FetchURL = %q, %v", data, err)
	}
	if data, err = c.Snapshot(context.Background(), "c1"); err != nil || string(data) != "snapbytes" {
		t.Fatalf("Snapshot = %q, %v", data, err)
	}
}
