package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"rmq/internal/api"
)

// fastClient returns a client for srv with sub-millisecond backoff so
// retry tests run fast.
func fastClient(srv *httptest.Server) *Client {
	return &Client{
		Base:      srv.URL,
		HTTP:      srv.Client(),
		BaseDelay: 200 * time.Microsecond,
		MaxDelay:  2 * time.Millisecond,
	}
}

func TestOptimizeRetriesTransient500(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"catalog":"c1","metrics":["time"],"plans":[],"iterations":5,"elapsed_ms":1,"deadline_expired":false,"cache":{"sets":0,"plans":0}}`))
	}))
	defer srv.Close()
	c := fastClient(srv)
	resp, err := c.Optimize(context.Background(), api.OptimizeRequest{Catalog: "c1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Iterations != 5 {
		t.Errorf("iterations = %d", resp.Iterations)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server hit %d times, want 3", got)
	}
	m := c.Metrics()
	if m.Calls != 1 || m.Retries != 2 || m.Abandoned != 0 {
		t.Errorf("metrics = %+v, want 1 call, 2 retries, 0 abandoned", m)
	}
}

func TestRegisterNotRetriedOn500(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := fastClient(srv)
	_, err := c.Register(context.Background(), api.CatalogRequest{})
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Status != 500 || serr.Message != "boom" {
		t.Fatalf("err = %v, want StatusError 500 boom", err)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("non-idempotent register retried: %d hits", got)
	}
	if m := c.Metrics(); m.Abandoned != 1 {
		t.Errorf("metrics = %+v, want 1 abandoned", m)
	}
}

func TestRetryAfterHonoredOn429(t *testing.T) {
	var hits atomic.Int32
	var gap atomic.Int64
	var last atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 {
			gap.Store(now - prev)
		}
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"saturated"}`, http.StatusTooManyRequests)
			return
		}
		_, _ = w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	c := fastClient(srv)
	// Registration is not idempotent, but 429 is rejected at admission,
	// so even Register must retry it.
	if _, err := c.Register(context.Background(), api.CatalogRequest{}); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 2 {
		t.Fatalf("hits = %d, want 2", hits.Load())
	}
	if got := time.Duration(gap.Load()); got < 900*time.Millisecond {
		t.Errorf("retried after %v, want >= ~1s (Retry-After honored)", got)
	}
}

func TestContextDeadlineBoundsRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, `{"error":"saturated"}`, http.StatusTooManyRequests)
	}))
	defer srv.Close()
	c := fastClient(srv)
	c.MaxDelay = time.Hour // do not cap the server's hint
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Optimize(ctx, api.OptimizeRequest{Catalog: "c1"})
	if err == nil {
		t.Fatal("no error despite saturated server")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("call outlived its context by %v", elapsed)
	}
}

func TestDialErrorRetriedThenAbandoned(t *testing.T) {
	// A listener that was closed: connections are refused at dial time,
	// so even the non-idempotent register retries (the request never
	// went out) and eventually abandons.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close()
	c := &Client{
		Base:       srv.URL,
		BaseDelay:  100 * time.Microsecond,
		MaxDelay:   time.Millisecond,
		MaxRetries: 2,
	}
	_, err := c.Register(context.Background(), api.CatalogRequest{})
	if err == nil {
		t.Fatal("register against a dead server succeeded")
	}
	if m := c.Metrics(); m.Retries != 2 || m.Abandoned != 1 {
		t.Errorf("metrics = %+v, want 2 retries and 1 abandoned", m)
	}
}

func TestErrorBodyParsing(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown catalog \"nope\""}`, http.StatusNotFound)
	}))
	defer srv.Close()
	c := fastClient(srv)
	_, err := c.Stats(context.Background())
	var serr *StatusError
	if !errors.As(err, &serr) || serr.Status != 404 || serr.Message != `unknown catalog "nope"` {
		t.Fatalf("err = %v", err)
	}
}

func TestFetchURL(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/catalogs/c1/snapshot" {
			http.NotFound(w, r)
			return
		}
		_, _ = w.Write([]byte("snapbytes"))
	}))
	defer srv.Close()
	c := fastClient(srv)
	data, err := c.FetchURL(context.Background(), srv.URL+"/catalogs/c1/snapshot")
	if err != nil || string(data) != "snapbytes" {
		t.Fatalf("FetchURL = %q, %v", data, err)
	}
	if data, err = c.Snapshot(context.Background(), "c1"); err != nil || string(data) != "snapbytes" {
		t.Fatalf("Snapshot = %q, %v", data, err)
	}
}

// deadServer returns a URL whose listener is closed: dials are refused.
func deadServer() string {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close()
	return srv.URL
}

func TestFailoverRotationOrder(t *testing.T) {
	var bHits, cHits atomic.Int32
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bHits.Add(1)
		_, _ = w.Write([]byte(`{}`))
	}))
	defer b.Close()
	cSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cHits.Add(1)
		_, _ = w.Write([]byte(`{}`))
	}))
	defer cSrv.Close()
	c := &Client{
		Endpoints: []string{deadServer(), b.URL, cSrv.URL},
		BaseDelay: 100 * time.Microsecond,
		MaxDelay:  time.Millisecond,
		Cooldown:  time.Hour,
	}
	// First call: endpoint 0 refuses the dial, rotation lands on 1 — in
	// order, never skipping to 2.
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if bHits.Load() != 1 || cHits.Load() != 0 {
		t.Fatalf("hits after first call: b=%d c=%d, want rotation to stop at b", bHits.Load(), cHits.Load())
	}
	if m := c.Metrics(); m.Failovers != 1 || m.Retries != 1 {
		t.Fatalf("metrics = %+v, want 1 failover, 1 retry", m)
	}
	// Second call: sticky on the endpoint that worked; the dead one is
	// cooling down and is not probed again.
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if bHits.Load() != 2 || cHits.Load() != 0 {
		t.Fatalf("hits after second call: b=%d c=%d, want sticky on b", bHits.Load(), cHits.Load())
	}
	if m := c.Metrics(); m.Failovers != 1 || m.Retries != 1 {
		t.Fatalf("metrics after sticky call = %+v, want no new failovers", m)
	}
}

func TestFailoverOn500ButNotOn429(t *testing.T) {
	var aMode atomic.Int32 // 0: 500, 1: 429-then-ok
	var aHits, bHits atomic.Int32
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case aMode.Load() == 0:
			aHits.Add(1)
			http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
		case aHits.Add(1) == 2: // second 429-mode hit succeeds
			_, _ = w.Write([]byte(`{}`))
		default:
			http.Error(w, `{"error":"saturated"}`, http.StatusTooManyRequests)
		}
	}))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bHits.Add(1)
		_, _ = w.Write([]byte(`{}`))
	}))
	defer b.Close()
	c := &Client{
		Endpoints: []string{a.URL, b.URL},
		BaseDelay: 100 * time.Microsecond,
		MaxDelay:  time.Millisecond,
		Cooldown:  time.Microsecond, // expire instantly so a is probed again
	}
	// 500 from a rotates to b.
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if aHits.Load() != 1 || bHits.Load() != 1 {
		t.Fatalf("hits = a:%d b:%d, want one each (rotate on 500)", aHits.Load(), bHits.Load())
	}
	if m := c.Metrics(); m.Failovers != 1 {
		t.Fatalf("metrics = %+v, want 1 failover", m)
	}
	// Move back to a (cooldown expired, cursor rotated past b on its own
	// next failure — force it by pointing a fresh client at a first).
	c2 := &Client{
		Endpoints: []string{a.URL, b.URL},
		BaseDelay: 100 * time.Microsecond,
		MaxDelay:  time.Millisecond,
	}
	aMode.Store(1)
	aHits.Store(0) // mode-1 hit 1 answers 429, hit 2 succeeds
	before := bHits.Load()
	if _, err := c2.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if bHits.Load() != before {
		t.Fatal("429 caused a failover; backpressure must stay on the same endpoint")
	}
	if m := c2.Metrics(); m.Failovers != 0 || m.Retries != 1 {
		t.Fatalf("metrics = %+v, want retry without failover", m)
	}
}

func TestFailoverContextErrorsNeverRetry(t *testing.T) {
	var hits atomic.Int32
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		<-r.Context().Done()
	}))
	defer slow.Close()
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		_, _ = w.Write([]byte(`{}`))
	}))
	defer b.Close()
	c := &Client{
		Endpoints: []string{slow.URL, b.URL},
		BaseDelay: 100 * time.Microsecond,
		MaxDelay:  time.Millisecond,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := c.Stats(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("a context expiry reached %d endpoints, want 1 (no failover on context errors)", got)
	}
	if m := c.Metrics(); m.Retries != 0 || m.Failovers != 0 || m.Abandoned != 1 {
		t.Fatalf("metrics = %+v, want no retries or failovers", m)
	}
}

func TestFailoverCooldownReadmitsEndpoint(t *testing.T) {
	var aHits atomic.Int32
	var aDead atomic.Bool
	aDead.Store(true)
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		aHits.Add(1)
		if aDead.Load() {
			http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
			return
		}
		_, _ = w.Write([]byte(`{}`))
	}))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{}`))
	}))
	defer b.Close()
	c := &Client{
		Endpoints: []string{a.URL, b.URL},
		BaseDelay: 100 * time.Microsecond,
		MaxDelay:  time.Millisecond,
		Cooldown:  20 * time.Millisecond,
	}
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatal(err) // failed over to b
	}
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatal(err) // still inside a's cooldown: sticky on b
	}
	if got := aHits.Load(); got != 1 {
		t.Fatalf("a probed %d times during cooldown, want 1", got)
	}
	// After the cooldown a is probed again in its rotation turn — which
	// comes up when b fails. Kill b by closing it.
	aDead.Store(false)
	time.Sleep(25 * time.Millisecond)
	b.Close()
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := aHits.Load(); got != 2 {
		t.Fatalf("recovered endpoint not re-admitted after cooldown: %d hits", got)
	}
}

func TestFailoverRegisterRotatesOnDialFailure(t *testing.T) {
	var hits atomic.Int32
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		_, _ = w.Write([]byte(`{"id":"c1"}`))
	}))
	defer b.Close()
	c := &Client{
		Endpoints: []string{deadServer(), b.URL},
		BaseDelay: 100 * time.Microsecond,
		MaxDelay:  time.Millisecond,
	}
	// Registration is not idempotent, but a refused dial means the
	// request never went out — so even Register fails over.
	info, err := c.Register(context.Background(), api.CatalogRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "c1" || hits.Load() != 1 {
		t.Fatalf("info = %+v, hits = %d", info, hits.Load())
	}
	if m := c.Metrics(); m.Failovers != 1 {
		t.Fatalf("metrics = %+v, want 1 failover", m)
	}
}
