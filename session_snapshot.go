package rmq

import (
	"errors"
	"fmt"

	"rmq/internal/cache"
	"rmq/internal/costmodel"
	"rmq/internal/snapshot"
	"rmq/internal/tableset"
)

// ErrSnapshotMismatch reports that a snapshot was recorded against a
// different catalog than the session it is being restored into.
// Frontier costs are only meaningful for the catalog they were computed
// against — restoring another catalog's frontiers would silently serve
// plans priced for the wrong database — so the restore is refused
// instead.
var ErrSnapshotMismatch = errors.New("snapshot belongs to a different catalog")

// ErrSnapshotIntoWarmSession reports a Restore into a session that
// already holds a shared store for one of the snapshot's metric
// subsets. Restores target fresh sessions: merging two live frontier
// histories would need a union of admission epochs that neither side's
// sync marks could be trusted against.
var ErrSnapshotIntoWarmSession = errors.New("session already has a shared cache for a snapshotted metric subset")

// Snapshot serializes the session's shared plan caches — the
// α-approximate sub-plan frontiers accumulated by every run with
// WithSharedCache, across all metric subsets — into an rmq-snap/v1
// byte stream stamped with the catalog's fingerprint. A later process
// passes the bytes to Restore on a fresh session over the same catalog
// and resumes at warm-start latency instead of re-learning the
// frontiers from zero.
//
// Snapshot is safe to call concurrently with running Optimize calls:
// each store is exported bucket by bucket under the store's own locks,
// so the result is a consistent cut that may simply miss admissions
// racing with the export. A session that never enabled WithSharedCache
// snapshots to a valid, empty stream.
func (s *Session) Snapshot() ([]byte, error) {
	s.mu.Lock()
	stores := make([]snapshot.TaggedStore, 0, len(s.shared))
	for tag, sh := range s.shared {
		stores = append(stores, snapshot.TaggedStore{Tag: tag, Store: sh})
	}
	s.mu.Unlock()
	return snapshot.Encode(s.cat.Fingerprint(), stores)
}

// Restore loads a Snapshot into the session. The snapshot must have
// been taken against a catalog with the same fingerprint (see
// Catalog.Fingerprint; ErrSnapshotMismatch otherwise), and the session
// must not yet have shared stores for the snapshotted metric subsets
// (ErrSnapshotIntoWarmSession) — restore before the first Optimize
// call with WithSharedCache. Malformed, truncated or version-skewed
// input is rejected with an error and leaves the session untouched.
//
// The restored stores keep the retention precision they were created
// with; a later run passing a conflicting WithCacheRetention gets
// ErrRetentionMismatch exactly as it would against the live store the
// snapshot was taken from.
func (s *Session) Restore(data []byte) error {
	h, err := snapshot.Peek(data)
	if err != nil {
		return fmt.Errorf("rmq: %w", err)
	}
	if want := s.cat.Fingerprint(); h.Fingerprint != want {
		return fmt.Errorf("rmq: %w (snapshot fingerprint %016x, catalog %016x)",
			ErrSnapshotMismatch, h.Fingerprint, want)
	}
	// Decode into session-free stores first: a decode error must leave
	// the session exactly as it was, so nothing is committed until the
	// whole stream has parsed and validated.
	restored := make(map[string]*cache.Shared)
	var tags []string
	if _, err := snapshot.Decode(data, func(tag string, st cache.StoreState) (*cache.Shared, error) {
		if err := validMetricsTag(tag); err != nil {
			return nil, err
		}
		if restored[tag] != nil {
			return nil, fmt.Errorf("duplicate metric subset %q", tag)
		}
		sh := cache.NewShared(tableset.NewSharedInterner(), st.Retention)
		restored[tag] = sh
		tags = append(tags, tag)
		return sh, nil
	}); err != nil {
		return fmt.Errorf("rmq: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, tag := range tags {
		if s.shared[tag] != nil {
			return fmt.Errorf("rmq: %w (subset %s)", ErrSnapshotIntoWarmSession, metricsTagName(tag))
		}
	}
	if s.shared == nil {
		s.shared = make(map[string]*cache.Shared, len(restored))
	}
	for tag, sh := range restored {
		s.shared[tag] = sh
	}
	return nil
}

// validMetricsTag checks that a snapshot store tag is a well-formed
// metricsKey: distinct known metrics, one byte each. Snapshots written
// by this package always are; the check rejects hand-crafted streams
// that would otherwise park unreachable stores in the session map.
func validMetricsTag(tag string) error {
	if len(tag) == 0 || len(tag) > costmodel.NumMetrics {
		return fmt.Errorf("metric subset tag of %d metrics", len(tag))
	}
	var seen [costmodel.NumMetrics]bool
	for i := 0; i < len(tag); i++ {
		m := tag[i]
		if int(m) >= costmodel.NumMetrics || seen[m] {
			return fmt.Errorf("metric subset tag %q invalid at %d", tag, i)
		}
		seen[m] = true
	}
	return nil
}

// metricsTagName renders a metricsKey for error messages.
func metricsTagName(tag string) string {
	metrics := make([]Metric, 0, len(tag))
	for i := 0; i < len(tag); i++ {
		metrics = append(metrics, Metric(tag[i]))
	}
	return fmt.Sprint(metrics)
}
