// Tests for session-level delta replication: live convergence of a warm
// replica, idempotent replay, cursor-driven incremental pulls, and the
// fingerprint binding — the streaming analogue of the Snapshot/Restore
// tests.
package rmq_test

import (
	"context"
	"errors"
	"testing"

	"rmq"
	"rmq/internal/opt"
	"rmq/internal/quality"
)

// TestSessionDeltaReplicationWarmsReplica pins the replication
// contract: a replica session that has already served traffic (warm —
// Restore would refuse it) converges on the primary via ApplyDeltas and
// then answers a low-budget query at warm quality.
func TestSessionDeltaReplicationWarmsReplica(t *testing.T) {
	cat := sharedTestCatalog(20)
	primary, cold := warmedSession(t, cat, rmq.WithMetrics(rmq.MetricTime, rmq.MetricBuffer))

	replica, err := rmq.NewSession(cat,
		rmq.WithMetrics(rmq.MetricTime, rmq.MetricBuffer),
		rmq.WithSharedCache(true))
	if err != nil {
		t.Fatal(err)
	}
	// Make the replica warm before the first pull: a brief run of its own.
	if _, err := replica.Optimize(context.Background(), rmq.WithSeed(3), rmq.WithMaxIterations(20)); err != nil {
		t.Fatal(err)
	}

	data, cursors, err := primary.EncodeDeltas(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := replica.ApplyDeltas(data)
	if err != nil {
		t.Fatal(err)
	}
	if applied.Instance != 7 || applied.Admitted == 0 {
		t.Fatalf("ApplyDeltas = %+v, want instance 7 and admissions", applied)
	}
	for tag, c := range cursors {
		if applied.Cursors[tag] != c {
			t.Fatalf("cursor mismatch for %q: encoder %d, applier %d", tag, c, applied.Cursors[tag])
		}
	}

	// Replay is a no-op.
	again, err := replica.ApplyDeltas(data)
	if err != nil {
		t.Fatal(err)
	}
	if again.Admitted != 0 {
		t.Fatalf("replayed delta admitted %d plans", again.Admitted)
	}

	// Incremental: more primary work, pull since the cursors, and the
	// replica serves the victim's workload at warm quality.
	if _, err := primary.Optimize(context.Background(), rmq.WithSeed(2), rmq.WithMaxIterations(200)); err != nil {
		t.Fatal(err)
	}
	data2, _, err := primary.EncodeDeltas(7, applied.Cursors)
	if err != nil {
		t.Fatal(err)
	}
	if len(data2) >= len(data) {
		t.Fatalf("incremental delta (%d bytes) not smaller than the full pull (%d bytes)", len(data2), len(data))
	}
	if _, err := replica.ApplyDeltas(data2); err != nil {
		t.Fatal(err)
	}
	warm, err := replica.Optimize(context.Background(), rmq.WithSeed(9), rmq.WithMaxIterations(40))
	if err != nil {
		t.Fatal(err)
	}
	checkNonDominated(t, warm)
	if eps := quality.Epsilon(opt.Costs(warm.Plans), opt.Costs(cold.Plans)); eps > 1 {
		t.Fatalf("replicated warm run at 1/10 budget: ε = %g vs cold result, want 1", eps)
	}
}

// TestSessionDeltaFingerprintMismatch pins that deltas refuse to apply
// across catalogs.
func TestSessionDeltaFingerprintMismatch(t *testing.T) {
	primary, _ := warmedSession(t, sharedTestCatalog(12))
	data, _, err := primary.EncodeDeltas(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	other, err := rmq.NewSession(sharedTestCatalog(13), rmq.WithSharedCache(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.ApplyDeltas(data); !errors.Is(err, rmq.ErrSnapshotMismatch) {
		t.Fatalf("ApplyDeltas across catalogs: %v, want ErrSnapshotMismatch", err)
	}
}

// TestSessionDeltaCursorsAdvance pins DeltaCursors: zero before any
// shared-cache work, positive after, and equal to what EncodeDeltas
// hands a puller.
func TestSessionDeltaCursorsAdvance(t *testing.T) {
	primary, _ := warmedSession(t, sharedTestCatalog(10))
	cursors := primary.DeltaCursors()
	if len(cursors) == 0 {
		t.Fatal("warmed session reports no delta cursors")
	}
	_, sent, err := primary.EncodeDeltas(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for tag, c := range sent {
		if c == 0 {
			t.Fatalf("tag %q exported at cursor 0", tag)
		}
		if cur := cursors[tag]; c < cur {
			t.Fatalf("tag %q exported cursor %d below DeltaCursors %d", tag, c, cur)
		}
	}
}
