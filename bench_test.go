// Benchmarks regenerating every figure of the paper's evaluation
// (Section 6 and appendix). Each BenchmarkFigureN runs the corresponding
// scenario grid — graph shapes × query sizes × algorithms — at the
// bench-scale tuning (see harness.BenchTuning; override with the
// RMQ_BENCH_BUDGET_MS / RMQ_BENCH_LONG_MS / RMQ_BENCH_CASES environment
// variables) and prints one summary line per scenario with the final
// median approximation error α per algorithm: the same series the
// paper's plots show, at the final checkpoint. Set RMQ_BENCH_VERBOSE=1
// for the full per-checkpoint tables.
//
// Each benchmark iteration is a complete figure regeneration, so these
// run meaningfully with the default -benchtime (b.N stays 1) or with
// -benchtime=1x. For higher-fidelity runs, use cmd/experiments.
//
// The per-table ablation benches of the design choices called out in
// DESIGN.md (climbing step, plan cache, α schedule) live next to the
// core package: see BenchmarkAblationClimb, BenchmarkAblationCache and
// BenchmarkAblationAlpha in internal/core.
package rmq_test

import (
	"context"
	"fmt"
	"math"
	"os"
	"testing"

	"rmq"
	"rmq/internal/baselines/weighted"
	"rmq/internal/catalog"
	"rmq/internal/core"
	"rmq/internal/harness"
	"rmq/internal/opt"
)

// runFigure executes every scenario of one figure and reports the final
// median α of RMQ (geometric mean across scenarios) as a custom metric.
// Result reporting is I/O and must not pollute the measured time, so all
// printing happens with the benchmark timer stopped.
func runFigure(b *testing.B, scenarios []harness.Scenario, label string) {
	verbose := os.Getenv("RMQ_BENCH_VERBOSE") == "1"
	for i := 0; i < b.N; i++ {
		logSum, count := 0.0, 0
		for _, s := range scenarios {
			res := harness.Run(context.Background(), s)
			b.StopTimer()
			if verbose {
				fmt.Println(res.Table())
			} else {
				fmt.Printf("  [%s] %s\n", label, res.Summary())
			}
			for _, series := range res.Series {
				if series.Algorithm != "RMQ" {
					continue
				}
				a := series.Alpha[len(series.Alpha)-1]
				if !math.IsInf(a, 1) && !math.IsNaN(a) {
					logSum += math.Log10(a)
					count++
				}
			}
			b.StartTimer()
		}
		if count > 0 {
			b.ReportMetric(math.Pow(10, logSum/float64(count)), "rmq-final-alpha-gm")
		}
	}
}

// BenchmarkFigure1 reproduces Figure 1: median α over time, two cost
// metrics, chain/cycle/star × {10,25,50,75,100} tables, all algorithms.
func BenchmarkFigure1(b *testing.B) {
	runFigure(b, harness.Figure1(harness.BenchTuning()), "fig1")
}

// BenchmarkFigure2 reproduces Figure 2: as Figure 1 with three metrics.
func BenchmarkFigure2(b *testing.B) {
	runFigure(b, harness.Figure2(harness.BenchTuning()), "fig2")
}

// BenchmarkFigure3 reproduces Figure 3: median climbing path length and
// number of Pareto plans found by RMQ versus query size.
func BenchmarkFigure3(b *testing.B) {
	scenarios := harness.Figure3(harness.BenchTuning())
	for i := 0; i < b.N; i++ {
		for _, s := range scenarios {
			res := harness.Run(context.Background(), s)
			b.StopTimer()
			fmt.Printf("  [fig3] %-30s path=%5.1f pareto=%5.0f\n",
				s.Name, res.MedianPathLength, res.MedianParetoPlans)
			b.StartTimer()
		}
	}
}

// BenchmarkFigure4 reproduces Figure 4: two metrics, MinMax
// selectivities, {25,50,75,100} tables.
func BenchmarkFigure4(b *testing.B) {
	runFigure(b, harness.Figure4(harness.BenchTuning()), "fig4")
}

// BenchmarkFigure5 reproduces Figure 5: as Figure 4 with three metrics.
func BenchmarkFigure5(b *testing.B) {
	runFigure(b, harness.Figure5(harness.BenchTuning()), "fig5")
}

// BenchmarkFigure6 reproduces Figure 6: the long-budget (paper: 30 s)
// comparison, two metrics, {50,100} tables.
func BenchmarkFigure6(b *testing.B) {
	runFigure(b, harness.Figure6(harness.BenchTuning()), "fig6")
}

// BenchmarkFigure7 reproduces Figure 7: as Figure 6 with three metrics.
func BenchmarkFigure7(b *testing.B) {
	runFigure(b, harness.Figure7(harness.BenchTuning()), "fig7")
}

// BenchmarkFigure8 reproduces Figure 8: precise error against a DP(1.01)
// reference on small ({4,8}-table) queries, two metrics.
func BenchmarkFigure8(b *testing.B) {
	runFigure(b, harness.Figure8(harness.BenchTuning()), "fig8")
}

// BenchmarkFigure9 reproduces Figure 9: as Figure 8 with three metrics.
func BenchmarkFigure9(b *testing.B) {
	runFigure(b, harness.Figure9(harness.BenchTuning()), "fig9")
}

// BenchmarkParallelScaling measures multi-start throughput: one op is a
// complete session run of a fixed total iteration budget split evenly
// across the workers, so with perfect scaling the wall time per op (and
// ns/op) drops linearly in the worker count and the reported iters/sec
// throughput rises linearly. Workers merge through the delta strategy's
// per-worker inbox shards, so the shared archive lock stays out of the
// scaling path. On a single-CPU machine the variants coincide; the gate
// only fails on regressions, so extra cores can only improve the
// numbers.
func BenchmarkParallelScaling(b *testing.B) {
	cat := rmq.GenerateCatalog(rmq.WorkloadSpec{Tables: 20, Graph: rmq.Chain}, 1)
	const totalIters = 240
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprint(workers), func(b *testing.B) {
			sess, err := rmq.NewSession(cat,
				rmq.WithMetrics(rmq.MetricTime, rmq.MetricBuffer))
			if err != nil {
				b.Fatal(err)
			}
			// One warm-up run fills the session's problem pool so the
			// timed ops measure optimization, not catalog setup.
			if _, err := sess.Optimize(context.Background(),
				rmq.WithParallelism(workers), rmq.WithMaxIterations(2)); err != nil {
				b.Fatal(err)
			}
			iters := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := sess.Optimize(context.Background(),
					rmq.WithParallelism(workers),
					rmq.WithMaxIterations(totalIters/workers),
					rmq.WithSeed(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				iters += f.Iterations
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(iters)/secs, "iters/sec")
			}
		})
	}
}

// BenchmarkWorkloadThroughput measures per-query latency (and
// queries/sec) over a repeated-query stream of a 24-table join — the
// session-caching headline scenario. One op is one complete Optimize
// call:
//
//   - cold: every query runs on a fresh session without cache sharing,
//     at the budget a cold run needs (coldIters) — the baseline every
//     query pays when nothing is retained.
//   - warm: queries stream through one long-lived session with
//     WithSharedCache at a tenth of the budget. The warm budget is not
//     a fudge: TestSharedCacheWarmStartQuality pins that repeat runs at
//     coldIters/10 return frontiers whose ε-indicator against the cold
//     result is exactly 1 (every cold trade-off matched or dominated),
//     because the session store hands each run the accumulated
//     sub-plan frontiers before its first iteration.
//
// The warm/cold ns/op ratio is the PR's ≥3x warm-start acceptance
// criterion; the committed bench reports carry both series.
func BenchmarkWorkloadThroughput(b *testing.B) {
	cat := rmq.GenerateCatalog(rmq.WorkloadSpec{Tables: 24, Graph: rmq.Chain}, 3)
	metrics := rmq.WithMetrics(rmq.MetricTime, rmq.MetricBuffer)
	const coldIters = 400
	const warmIters = coldIters / 10
	reportQPS := func(b *testing.B) {
		if secs := b.Elapsed().Seconds(); secs > 0 {
			b.ReportMetric(float64(b.N)/secs, "queries/sec")
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sess, err := rmq.NewSession(cat, metrics)
			if err != nil {
				b.Fatal(err)
			}
			f, err := sess.Optimize(context.Background(),
				rmq.WithSeed(uint64(i)+1), rmq.WithMaxIterations(coldIters))
			if err != nil {
				b.Fatal(err)
			}
			if len(f.Plans) == 0 {
				b.Fatal("empty frontier")
			}
		}
		reportQPS(b)
	})
	b.Run("warm", func(b *testing.B) {
		// Warm calls keep refining the session's precision schedule, so a
		// very long stream slowly gets more expensive per call (it buys
		// quality). To keep ns/op stationary regardless of b.N — the CI
		// gate compares runs at a ±20% threshold — the session is rebuilt
		// (cold call untimed) every streamLen measured calls: each timed
		// op is one of the first streamLen warm repeats after a cold
		// start, the regime the ≥3x warm-start claim is about.
		const streamLen = 25
		var sess *rmq.Session
		calls := streamLen
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if calls == streamLen {
				b.StopTimer()
				var err error
				sess, err = rmq.NewSession(cat, metrics, rmq.WithSharedCache(true))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sess.Optimize(context.Background(),
					rmq.WithSeed(1), rmq.WithMaxIterations(coldIters)); err != nil {
					b.Fatal(err)
				}
				calls = 0
				b.StartTimer()
			}
			f, err := sess.Optimize(context.Background(),
				rmq.WithSeed(uint64(i)+2), rmq.WithMaxIterations(warmIters))
			if err != nil {
				b.Fatal(err)
			}
			if len(f.Plans) == 0 {
				b.Fatal("empty frontier")
			}
			calls++
		}
		reportQPS(b)
	})
	b.Run("restored", func(b *testing.B) {
		// The restart path: sessions warm-started from a snapshot instead
		// of a live cold call. Same streamLen discipline as warm — each
		// timed op is an early warm repeat, now after a restore — so the
		// two sub-benchmarks are directly comparable: restored ≈ warm is
		// the "no cold-start cliff after restart" claim, against cold's
		// ~an-order-of-magnitude-slower ns/op.
		const streamLen = 25
		seed, err := rmq.NewSession(cat, metrics, rmq.WithSharedCache(true))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := seed.Optimize(context.Background(),
			rmq.WithSeed(1), rmq.WithMaxIterations(coldIters)); err != nil {
			b.Fatal(err)
		}
		snap, err := seed.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		var sess *rmq.Session
		calls := streamLen
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if calls == streamLen {
				b.StopTimer()
				sess, err = rmq.NewSession(cat, metrics, rmq.WithSharedCache(true))
				if err != nil {
					b.Fatal(err)
				}
				if err := sess.Restore(snap); err != nil {
					b.Fatal(err)
				}
				calls = 0
				b.StartTimer()
			}
			f, err := sess.Optimize(context.Background(),
				rmq.WithSeed(uint64(i)+2), rmq.WithMaxIterations(warmIters))
			if err != nil {
				b.Fatal(err)
			}
			if len(f.Plans) == 0 {
				b.Fatal("empty frontier")
			}
			calls++
		}
		reportQPS(b)
	})
}

// snapshotBenchSession builds a warmed shared-cache session at the
// given retention α, deep enough into the schedule's fine-α regime
// that retention has teeth. Retention is the store-size dial: α = 2
// retains a fraction of exact retention's plans (see the
// retained-plans metric), which is what exposes the O(retained plans)
// scaling of encode and restore — the two settings differ in store
// size, nothing else.
func snapshotBenchSession(b *testing.B, retain float64) (*rmq.Session, []byte) {
	b.Helper()
	cat := rmq.GenerateCatalog(rmq.WorkloadSpec{Tables: 16, Graph: rmq.Chain}, 3)
	sess, err := rmq.NewSession(cat,
		rmq.WithMetrics(rmq.MetricTime, rmq.MetricBuffer),
		rmq.WithSharedCache(true),
		rmq.WithCacheRetention(retain))
	if err != nil {
		b.Fatal(err)
	}
	// Enough cumulative work to reach the schedule's fine-α regime,
	// where exact retention's store balloons past what α = 2 keeps —
	// otherwise the two settings retain identical stores and the
	// scaling comparison is vacuous.
	for run := 0; run < 2; run++ {
		if _, err := sess.Optimize(context.Background(),
			rmq.WithSeed(uint64(run)+1), rmq.WithMaxIterations(1500),
			rmq.WithParallelism(4)); err != nil {
			b.Fatal(err)
		}
	}
	snap, err := sess.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	return sess, snap
}

// BenchmarkSnapshotEncode measures serializing a warmed session's plan
// caches. Cost must track retained plans (compare the two retention
// settings via the retained-plans metric), not total plans ever seen.
func BenchmarkSnapshotEncode(b *testing.B) {
	for _, retain := range []float64{1, 2} {
		b.Run(fmt.Sprintf("retain=%g", retain), func(b *testing.B) {
			sess, snap := snapshotBenchSession(b, retain)
			cs := sess.CacheStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				data, err := sess.Snapshot()
				if err != nil {
					b.Fatal(err)
				}
				if len(data) != len(snap) {
					b.Fatalf("snapshot size changed: %d vs %d", len(data), len(snap))
				}
			}
			b.ReportMetric(float64(cs.Plans), "retained-plans")
			b.ReportMetric(float64(len(snap)), "snapshot-bytes")
		})
	}
}

// BenchmarkSnapshotRestore measures materializing a snapshot into a
// fresh session — the startup cost a warm restart pays before serving.
// Like encode it must scale with retained plans: restoring the α = 2
// snapshot is proportionally cheaper than the exact-retention one.
func BenchmarkSnapshotRestore(b *testing.B) {
	for _, retain := range []float64{1, 2} {
		b.Run(fmt.Sprintf("retain=%g", retain), func(b *testing.B) {
			sess, snap := snapshotBenchSession(b, retain)
			cat := rmq.GenerateCatalog(rmq.WorkloadSpec{Tables: 16, Graph: rmq.Chain}, 3)
			cs := sess.CacheStats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fresh, err := rmq.NewSession(cat,
					rmq.WithMetrics(rmq.MetricTime, rmq.MetricBuffer),
					rmq.WithSharedCache(true),
					rmq.WithCacheRetention(retain))
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := fresh.Restore(snap); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cs.Plans), "retained-plans")
			b.ReportMetric(float64(len(snap)), "snapshot-bytes")
		})
	}
}

// BenchmarkExtensionWeightedSum quantifies the related-work remark that
// scalarizing with varying weight vectors recovers at most the convex
// hull of the Pareto frontier: it runs the WS baseline alongside RMQ on
// one mid-size scenario. WS's α stays above RMQ's because non-convex
// trade-offs minimize no weighted sum.
func BenchmarkExtensionWeightedSum(b *testing.B) {
	tn := harness.BenchTuning()
	s := harness.Scenario{
		Name:        "extension: WS vs RMQ, star, 50 tables, 3 metrics",
		Graph:       catalog.Star,
		Tables:      50,
		Metrics:     3,
		Selectivity: catalog.Steinbrunn,
		Budget:      tn.Budget * 4,
		Checkpoints: tn.Checkpoints,
		Cases:       tn.Cases,
		BaseSeed:    tn.BaseSeed,
		Algorithms:  []opt.Factory{weighted.Factory(), core.Factory()},
		Parallel:    tn.Parallel,
	}
	for i := 0; i < b.N; i++ {
		res := harness.Run(context.Background(), s)
		b.StopTimer()
		fmt.Printf("  [ext-ws] %s\n", res.Summary())
		b.StartTimer()
	}
}
