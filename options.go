package rmq

import (
	"context"
	"fmt"
	"time"

	"rmq/internal/costmodel"
	"rmq/internal/opt"
)

// Option configures one optimization run. Options passed to NewSession
// become session defaults; options passed to Optimize apply on top of
// them, later options overriding earlier ones.
type Option func(*config)

// config is the resolved run configuration after applying all options.
type config struct {
	metrics       []Metric
	timeout       time.Duration
	maxIterations int
	seed          uint64
	algorithm     Algorithm
	dpAlpha       float64
	parallelism   int
	merge         MergeStrategy
	sharedCache   bool
	retention     float64
	retentionSet  bool
	poolLimit     int
	poolLimitSet  bool
	progress      func(Progress)
	progressEvery int
	onImprovement func(Progress)
	err           error
}

// fail records the first option error; resolution reports it.
func (c *config) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// resolveConfig applies the option layers in order and validates the
// result.
func resolveConfig(layers ...[]Option) (config, error) {
	var c config
	for _, layer := range layers {
		for _, o := range layer {
			if o != nil {
				o(&c)
			}
		}
	}
	if c.err != nil {
		return c, c.err
	}
	if len(c.metrics) == 0 {
		c.metrics = costmodel.AllMetrics()
	}
	seen := make(map[Metric]bool, len(c.metrics))
	for _, m := range c.metrics {
		if m >= costmodel.NumMetrics {
			return c, fmt.Errorf("rmq: unknown metric %v", m)
		}
		if seen[m] {
			return c, fmt.Errorf("rmq: duplicate metric %v", m)
		}
		seen[m] = true
	}
	if c.parallelism <= 0 {
		c.parallelism = 1
	}
	if c.retention < 1 {
		c.retention = 1
	}
	return c, nil
}

// poolCap resolves the per-class problem-pool cap a run's release uses:
// the explicit WithPoolLimit value, or -1 selecting the adaptive
// default (see Session.release).
func (c *config) poolCap() int {
	if c.poolLimitSet {
		return c.poolLimit
	}
	return -1
}

// WithMetrics selects the cost metric subset (the paper's l); the
// default is all three. Duplicate or unknown metrics are rejected.
func WithMetrics(metrics ...Metric) Option {
	ms := append([]Metric(nil), metrics...)
	return func(c *config) { c.metrics = ms }
}

// WithTimeout bounds the optimization wall-clock time, in addition to
// any context deadline. If neither a context deadline, a timeout, nor an
// iteration cap bounds the run, a default timeout of one second applies.
func WithTimeout(d time.Duration) Option {
	return func(c *config) {
		if d <= 0 {
			c.fail(fmt.Errorf("rmq: non-positive timeout %v", d))
			return
		}
		c.timeout = d
	}
}

// WithMaxIterations bounds the number of optimizer steps per worker (RMQ
// iterations, NSGA-II generations, ...). With a fixed seed it makes runs
// deterministic, independent of machine speed — including parallel runs,
// whose merged frontier costs are then reproducible.
func WithMaxIterations(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.fail(fmt.Errorf("rmq: negative iteration cap %d", n))
			return
		}
		c.maxIterations = n
	}
}

// WithSeed makes the run reproducible; runs with equal seeds and
// iteration caps produce identical frontiers. In parallel runs each
// worker derives its own seed from this one and its worker index.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// WithAlgorithm selects the optimization algorithm by registry name;
// default AlgoRMQ. See RegisterAlgorithm for plugging in external
// algorithms.
func WithAlgorithm(a Algorithm) Option {
	return func(c *config) { c.algorithm = a }
}

// WithDPAlpha sets the approximation factor for AlgoDP (default 2).
func WithDPAlpha(alpha float64) Option {
	return func(c *config) { c.dpAlpha = alpha }
}

// WithParallelism runs n independent optimizer instances concurrently
// (parallel multi-start), each with its own derived seed and its own
// cost-model state, merging everything they find into one shared
// non-dominated archive. n ≤ 1 means sequential. An iteration cap
// applies per worker; Frontier.Iterations reports the sum. Multi-start
// only pays off for randomized algorithms: a deterministic,
// seed-ignoring algorithm like AlgoDP performs the same computation on
// every worker.
func WithParallelism(n int) Option {
	return func(c *config) { c.parallelism = n }
}

// WithSharedCache shares the plan cache — the per-table-set Pareto
// frontiers of sub-plans that RMQ amortizes its iterations through —
// across the parallel workers of a run and across the Optimize calls of
// a Session. All workers publish newly found sub-plan frontiers into
// one session-scoped concurrent store and warm-start from it, so a
// session serving repeated or overlapping queries skips the cold-start
// frontier building on every call after the first, and N parallel
// workers pay the cold start once instead of N times.
//
// Sharing is off by default because it changes iteration trajectories:
// a worker's cache sees plans that its private schedule alone would not
// have found, so runs with equal seeds are no longer bit-identical to
// private-cache runs (results remain valid Pareto approximations, and
// at equal budgets the shared-cache frontier is empirically no worse —
// see the differential quality tests). The store retains every
// published plan that survives pruning at the retention precision; see
// WithCacheRetention for bounding memory growth. Only algorithms with a
// sub-plan cache (AlgoRMQ) consult the store; others ignore it.
func WithSharedCache(enabled bool) Option {
	return func(c *config) { c.sharedCache = enabled }
}

// WithCacheRetention sets the precision α ≥ 1 at which a session's
// shared plan cache (WithSharedCache) retains published frontiers.
// Retention 1 — the default — keeps the exact non-dominated union of
// every frontier ever published: maximum warm-start fidelity, memory
// growing as workers and runs accumulate diverse trade-offs. A
// retention α > 1 keeps only α-approximate frontiers, which bounds the
// retained plans per table set polynomially (the paper's Lemma 6) and
// trades a bounded loss of frontier detail for firmly bounded memory.
// Plan costs span orders of magnitude under this cost model, so
// pruning has teeth from α ≈ 2 upward (α = 2 roughly quarters a
// long-lived session's store). The retention of a session's store is
// fixed by the first run that creates it (per metric subset); later
// runs reuse the store as-is.
func WithCacheRetention(alpha float64) Option {
	return func(c *config) {
		if alpha < 1 {
			c.fail(fmt.Errorf("rmq: cache retention %v below 1", alpha))
			return
		}
		c.retention = alpha
		c.retentionSet = true
	}
}

// WithPoolLimit caps how many warmed problem instances a session parks
// per compatibility class (metric subset × shared-cache binding) for
// reuse by later runs; the overflow of a release is dropped, oldest
// first. Each parked instance holds a cost model with memoized
// cardinalities, private plan caches, and scratch arenas, so an
// uncapped pool under bursts of concurrent Optimize calls pins
// burst×parallelism instances permanently. The default (option unset)
// is adaptive: a release keeps at most max(GOMAXPROCS, the run's
// parallelism) instances — everything one run at that width can
// re-borrow warm. n = 0 disables pooling entirely; negative n is an
// error. Session.PoolStats reports the pool's size, high-water mark,
// and drop count.
func WithPoolLimit(n int) Option {
	return func(c *config) {
		if n < 0 {
			c.fail(fmt.Errorf("rmq: negative pool limit %d", n))
			return
		}
		c.poolLimit = n
		c.poolLimitSet = true
	}
}

// MergeStrategy selects how parallel workers publish their results into
// the shared archive; see the constants.
type MergeStrategy = opt.MergeStrategy

const (
	// MergeDelta (the default) merges only the plans each worker
	// admitted since its previous merge, and deposits them through
	// per-worker inbox shards so workers never queue up on one archive
	// lock. Falls back to full merging for algorithms without admission
	// marks.
	MergeDelta = opt.MergeDelta
	// MergeFull re-merges each worker's complete frontier on every
	// merge (the historical behavior). The resulting frontier is
	// identical; only the synchronization work differs.
	MergeFull = opt.MergeFull
)

// WithMergeStrategy overrides how parallel workers and streaming runs
// merge into the shared result archive; default MergeDelta. The merged
// frontier is the same under either strategy — this knob exists for
// comparison and as an escape hatch.
func WithMergeStrategy(s MergeStrategy) Option {
	return func(c *config) {
		if s != MergeDelta && s != MergeFull {
			c.fail(fmt.Errorf("rmq: unknown merge strategy %d", s))
			return
		}
		c.merge = s
	}
}

// Progress is an anytime snapshot of a running optimization, as
// delivered to WithProgress and OnImprovement callbacks.
type Progress struct {
	// Iterations is the total number of optimizer steps performed so
	// far, summed across parallel workers.
	Iterations int
	// Elapsed is the wall-clock time since the run started.
	Elapsed time.Duration
	// Metrics is the metric subset the plan costs refer to.
	Metrics []Metric
	// Plans is the current merged non-dominated plan set, sorted by
	// cost. The slice is a copy owned by the receiver.
	Plans []*Plan
}

// WithProgress streams anytime frontier snapshots to fn, at most once
// per `every` optimizer steps (every ≤ 1 reports after each step). The
// callback runs on an optimizer goroutine — calls are serialized, but a
// slow callback stalls the run.
func WithProgress(every int, fn func(Progress)) Option {
	return func(c *config) {
		c.progress = fn
		c.progressEvery = every
	}
}

// OnImprovement invokes fn whenever the merged frontier improves, i.e. a
// newly found plan was admitted to the non-dominated archive. The
// callback runs on an optimizer goroutine — calls are serialized, but a
// slow callback stalls the run.
func OnImprovement(fn func(Progress)) Option {
	return func(c *config) { c.onImprovement = fn }
}

// mergeEvery returns the worker merge cadence matching the streaming
// options: every step when improvements must be detected, batched to
// the progress interval when only throttled progress is wanted, and 0
// (Run's default, irrelevant without an observer) otherwise.
func (c *config) mergeEvery() int {
	if c.onImprovement != nil {
		return 1
	}
	if c.progress != nil && c.progressEvery > 1 {
		return c.progressEvery
	}
	return 0
}

// observer builds the opt.Run observe callback for the configured
// streaming options, or nil when none are set. Run serializes observe
// calls, so the closure's state needs no locking.
func (c *config) observer() func(opt.Event) {
	progress, onImprove := c.progress, c.onImprovement
	if progress == nil && onImprove == nil {
		return nil
	}
	every := c.progressEvery
	if every < 1 {
		every = 1
	}
	metrics := append([]Metric(nil), c.metrics...)
	next := every
	return func(ev opt.Event) {
		improve := onImprove != nil && ev.Improved
		report := progress != nil && ev.Iterations >= next
		if !improve && !report {
			return
		}
		p := Progress{
			Iterations: ev.Iterations,
			Elapsed:    ev.Elapsed,
			Metrics:    metrics,
			Plans:      ev.Snapshot(),
		}
		sortPlans(p.Plans)
		if improve {
			onImprove(p)
		}
		if report {
			for next <= ev.Iterations {
				next += every
			}
			progress(p)
		}
	}
}

// Options configures OptimizeWithOptions, the pre-context form of the
// API. The zero value optimizes with RMQ for one second under all three
// cost metrics.
//
// Deprecated: Use Optimize with a context and functional options.
type Options struct {
	// Metrics is the cost metric subset (the paper's l); default all
	// three.
	Metrics []Metric
	// Timeout bounds optimization time; default one second.
	Timeout time.Duration
	// MaxIterations, when > 0, additionally bounds the number of
	// optimizer steps per worker.
	MaxIterations int
	// Seed makes the run reproducible; runs with equal seeds and
	// MaxIterations produce identical frontiers.
	Seed uint64
	// Algorithm selects the optimizer; default AlgoRMQ.
	Algorithm Algorithm
	// DPAlpha is the approximation factor for AlgoDP; default 2.
	DPAlpha float64
	// Parallelism is the number of concurrent multi-start workers;
	// default 1.
	Parallelism int
}

// OptimizeWithOptions is the pre-context form of Optimize, kept so
// existing callers migrate at their own pace. It cannot be cancelled.
//
// Deprecated: Use Optimize with a context and functional options.
func OptimizeWithOptions(cat *Catalog, opts Options) (*Frontier, error) {
	return Optimize(context.Background(), cat, opts.asOptions()...)
}

// asOptions translates the legacy struct (and its zero-value defaults)
// into functional options.
func (o Options) asOptions() []Option {
	var out []Option
	if len(o.Metrics) > 0 {
		out = append(out, WithMetrics(o.Metrics...))
	}
	timeout := o.Timeout
	if timeout <= 0 {
		timeout = time.Second
	}
	out = append(out, WithTimeout(timeout))
	if o.MaxIterations > 0 {
		out = append(out, WithMaxIterations(o.MaxIterations))
	}
	out = append(out, WithSeed(o.Seed))
	if o.Algorithm != "" {
		out = append(out, WithAlgorithm(o.Algorithm))
	}
	if o.DPAlpha != 0 {
		out = append(out, WithDPAlpha(o.DPAlpha))
	}
	if o.Parallelism > 1 {
		out = append(out, WithParallelism(o.Parallelism))
	}
	return out
}
